#include <gtest/gtest.h>

#include "lib/model.hh"

namespace {

using namespace rsn;
using namespace rsn::lib;

TEST(Model, BertLargeEncoderStructure)
{
    auto m = bertLargeEncoder(6, 512, /*fuse_qkv=*/false, 1);
    // 3 QKV + attention + dense + ff1 + ff2 = 7 segments.
    EXPECT_EQ(m.segments.size(), 7u);
    EXPECT_EQ(m.input_rows, 3072u);
    EXPECT_EQ(m.input_cols, 1024u);

    const auto &attn = std::get<AttentionBlock>(m.segments[3]);
    EXPECT_EQ(attn.heads, 96u);
    EXPECT_EQ(attn.heads_per_batch, 16u);
    EXPECT_EQ(attn.seq, 512u);
    EXPECT_EQ(attn.dhead, 64u);

    const auto &ff1 = std::get<LinearLayer>(m.segments[5]);
    EXPECT_EQ(ff1.n, 4096u);
    EXPECT_TRUE(ff1.gelu);
    EXPECT_FALSE(ff1.layernorm);

    const auto &ff2 = std::get<LinearLayer>(m.segments[6]);
    EXPECT_TRUE(ff2.layernorm);
    EXPECT_TRUE(ff2.residual);
    EXPECT_EQ(ff2.residual_src, "L0.dense_out");
}

TEST(Model, FusedQkvReplacesThreeLinears)
{
    auto m = bertLargeEncoder(6, 512, /*fuse_qkv=*/true, 1);
    EXPECT_EQ(m.segments.size(), 5u);
    const auto &qkv = std::get<LinearLayer>(m.segments[0]);
    EXPECT_EQ(qkv.n, 3 * 1024u);
    const auto &attn = std::get<AttentionBlock>(m.segments[1]);
    EXPECT_EQ(attn.q_src, attn.k_src);
    EXPECT_EQ(attn.k_col_off, 1024u);
    EXPECT_EQ(attn.v_col_off, 2048u);
}

TEST(Model, MultiLayerEncoderChainsResiduals)
{
    auto m = bertLargeEncoder(1, 128, true, 2);
    EXPECT_EQ(m.segments.size(), 10u);
    const auto &l1_qkv = std::get<LinearLayer>(m.segments[5]);
    EXPECT_EQ(l1_qkv.in_src, "L0.encoder_out");
}

TEST(Model, FlopsAccounting)
{
    auto m = bertLargeEncoder(6, 512, true, 1);
    // MM flops: QKV 3x + dense + 2 FF + attention.
    std::uint64_t mm = 2ull * 3072 * 1024 * 3072      // fused QKV
                       + 2ull * 3072 * 1024 * 1024    // dense
                       + 2ull * 3072 * 1024 * 4096 * 2;
    std::uint64_t attn = 96ull * (2 * 2ull * 512 * 64 * 512 +
                                  5ull * 512 * 512);
    std::uint64_t expected_min = mm + attn;
    EXPECT_GE(m.totalFlops(), expected_min);
    // Epilogues add at most a few percent.
    EXPECT_LE(m.totalFlops(), expected_min * 1.05);
}

TEST(Model, MinTrafficCountsWeightsOnce)
{
    auto m = bertLargeEncoder(1, 512, true, 1);
    // Weights dominate: 12 * 1024^2 * 4B = 50.3 MB.
    EXPECT_GT(m.minTrafficBytes(), Bytes(50) * 1024 * 1024);
}

TEST(Model, VitUsesHidden768)
{
    auto m = vitEncoder(6, false, 1);
    const auto &q = std::get<LinearLayer>(m.segments[0]);
    EXPECT_EQ(q.k, 768u);
    const auto &attn = std::get<AttentionBlock>(m.segments[3]);
    EXPECT_EQ(attn.dhead, 64u);
    EXPECT_EQ(attn.heads_per_batch, 12u);
}

TEST(Model, NcfIsAllLinear)
{
    auto m = ncf(6);
    EXPECT_EQ(m.segments.size(), 3u);
    for (const auto &s : m.segments)
        EXPECT_TRUE(std::holds_alternative<LinearLayer>(s));
}

TEST(Model, MlpStacksSquareLayers)
{
    auto m = mlp(6);
    EXPECT_EQ(m.segments.size(), 5u);
    const auto &l = std::get<LinearLayer>(m.segments[0]);
    EXPECT_EQ(l.k, 4096u);
    EXPECT_EQ(l.n, 4096u);
}

TEST(Model, TinyEncoderRespectsParameters)
{
    auto m = tinyEncoder(2, 16, 32, 4, 48, true);
    EXPECT_EQ(m.input_rows, 32u);
    EXPECT_EQ(m.input_cols, 32u);
    const auto &attn = std::get<AttentionBlock>(m.segments[1]);
    EXPECT_EQ(attn.dhead, 8u);
    EXPECT_EQ(attn.heads, 8u);
}

TEST(Model, LinearFlopsIncludeEpilogues)
{
    LinearLayer plain;
    plain.m = plain.k = plain.n = 64;
    LinearLayer rich = plain;
    rich.bias = rich.gelu = rich.layernorm = rich.residual = true;
    EXPECT_GT(rich.flops(), plain.flops());
}

} // namespace
