/**
 * @file
 * Chaos end-to-end tier (ISSUE 6): seeded fault schedules on the full
 * machine either complete with ref_math-correct outputs or terminate
 * with a structured RunReport naming the fault site — never hang, never
 * corrupt, never abort the process. And the same seed reproduces the
 * outcome bit-for-bit: status, final tick, and fault log.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/machine.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/runner.hh"

namespace {

using namespace rsn;

/** Keep in sync with tests/lib/test_golden_e2e.cc. */
constexpr Tick kTinyEncoderGoldenTicks = 11084;

/** Chaos runs must terminate well before this (tiny model is ~11k ticks
 *  fault-free; injected stalls/retries add a few percent). */
constexpr Tick kChaosTickBudget = Tick(10) * 1000 * 1000;

lib::Model
tinyModel()
{
    return lib::tinyEncoder(/*batch=*/2, /*seq=*/32, /*hidden=*/64,
                            /*heads=*/4, /*ff=*/128, /*fuse_qkv=*/true);
}

lib::CheckedRun
chaosRun(const sim::FaultSpec &fault)
{
    auto cfg = core::MachineConfig::vck190(/*functional=*/true);
    cfg.fault = fault;
    core::RsnMachine mach(cfg);
    auto model = tinyModel();
    auto compiled = lib::compileModel(mach, model,
                                      lib::ScheduleOptions::optimized());
    return lib::runModelChecked(mach, model, compiled, /*seed=*/2025,
                                2e-3f, 2e-3f, kChaosTickBudget);
}

TEST(ChaosE2e, FaultsDisabledMatchesTheGoldenTrace)
{
    // The structured-run path with no injector must be bit-identical to
    // the plain golden run: same tick count, verified outputs, Ok status.
    auto cr = chaosRun(sim::FaultSpec{});
    ASSERT_TRUE(cr.report.ok()) << cr.report.toString();
    EXPECT_TRUE(cr.outputs_ok);
    EXPECT_TRUE(cr.functional);
    EXPECT_EQ(cr.report.result.ticks, kTinyEncoderGoldenTicks);
    EXPECT_EQ(cr.report.faults_injected, 0u);
}

TEST(ChaosE2e, ChecksumsAloneDoNotMoveATick)
{
    // Payload protection is pure bookkeeping: stamping and verifying
    // checksums must not perturb the schedule.
    sim::FaultSpec f;
    f.checksums = true;
    auto cr = chaosRun(f);
    ASSERT_TRUE(cr.report.ok()) << cr.report.toString();
    EXPECT_TRUE(cr.outputs_ok);
    EXPECT_EQ(cr.report.result.ticks, kTinyEncoderGoldenTicks);
}

TEST(ChaosE2e, RecoveredStallsCompleteCorrectlyButLater)
{
    sim::FaultSpec f;
    f.seed = 5;
    f.link_stall_rate = 0.05;
    f.link_stall_max = 32;
    auto cr = chaosRun(f);
    ASSERT_TRUE(cr.report.ok()) << cr.report.toString();
    EXPECT_TRUE(cr.outputs_ok) << "recovered faults corrupted outputs";
    EXPECT_GT(cr.report.faults_injected, 0u);
    EXPECT_GT(cr.report.result.ticks, kTinyEncoderGoldenTicks)
        << "injected stalls cost no time";
}

TEST(ChaosE2e, CertainBitFlipIsDiagnosedNotComputedWith)
{
    sim::FaultSpec f;
    f.flip_rate = 1.0;
    auto cr = chaosRun(f);
    EXPECT_FALSE(cr.report.ok());
    EXPECT_EQ(cr.report.status.code, StatusCode::FaultDiagnosed);
    EXPECT_TRUE(cr.report.result.fault_aborted);
    EXPECT_FALSE(cr.report.result.completed);
    // The diagnosis names the detecting site.
    EXPECT_NE(cr.report.status.message.find("checksum-mismatch"),
              std::string::npos)
        << cr.report.status.message;
    EXPECT_NE(cr.report.status.message.find("fu "), std::string::npos)
        << cr.report.status.message;
}

TEST(ChaosE2e, SeededSchedulesAreReproducibleAndNeverHang)
{
    // The headline chaos contract, over several seeds of the full
    // preset: every run terminates within the tick budget, and the
    // outcome is bitwise identical run-to-run — same status, same final
    // tick, same fault log. Each run either completes with correct
    // outputs or ends with a structured report; there is no third
    // outcome.
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        auto a = chaosRun(sim::FaultSpec::chaosPreset(seed));
        auto b = chaosRun(sim::FaultSpec::chaosPreset(seed));

        EXPECT_EQ(a.report.status.code, b.report.status.code) << seed;
        EXPECT_EQ(a.report.status.message, b.report.status.message)
            << seed;
        EXPECT_EQ(a.report.result.ticks, b.report.result.ticks) << seed;
        EXPECT_EQ(a.report.faults_injected, b.report.faults_injected)
            << seed;
        ASSERT_EQ(a.report.faults.size(), b.report.faults.size()) << seed;
        for (std::size_t i = 0; i < a.report.faults.size(); ++i)
            EXPECT_EQ(a.report.faults[i], b.report.faults[i])
                << seed << " record " << i;

        // Terminated (did not burn the whole budget), with a binary
        // outcome: verified-correct completion or a structured report.
        EXPECT_FALSE(a.report.result.timed_out) << a.report.toString();
        if (a.report.ok())
            EXPECT_TRUE(a.outputs_ok)
                << "seed " << seed
                << " completed with corrupt outputs: the recovery path "
                   "let bad data through";
        else
            EXPECT_FALSE(a.report.status.message.empty());
    }
}

TEST(ChaosE2e, ResetMachineReplaysTheChaosScheduleExactly)
{
    // chaosPreset(1) completes on the tiny model (pinned by the smoke
    // tier); a reset of that machine must replay the identical fault
    // schedule and land on the identical tick.
    auto cfg = core::MachineConfig::vck190(/*functional=*/true);
    cfg.fault = sim::FaultSpec::chaosPreset(1);
    core::RsnMachine mach(cfg);
    auto model = tinyModel();
    Tick first_ticks = 0;
    std::uint64_t first_faults = 0;
    for (int i = 0; i < 2; ++i) {
        if (i) {
            ASSERT_TRUE(mach.resettable());
            mach.reset();
        }
        auto compiled = lib::compileModel(
            mach, model, lib::ScheduleOptions::optimized());
        auto cr = lib::runModelChecked(mach, model, compiled, 2025, 2e-3f,
                                       2e-3f, kChaosTickBudget);
        ASSERT_TRUE(cr.report.ok()) << cr.report.toString();
        EXPECT_TRUE(cr.outputs_ok);
        if (i) {
            EXPECT_EQ(cr.report.result.ticks, first_ticks);
            EXPECT_EQ(cr.report.faults_injected, first_faults);
        } else {
            first_ticks = cr.report.result.ticks;
            first_faults = cr.report.faults_injected;
        }
    }
}

TEST(ChaosE2e, DeadLinkEndsTheRunWithADiagnosisNamingTheStream)
{
    sim::FaultSpec f;
    f.link_drop_rate = 1.0;  // first transfer already exhausts retries
    f.max_retries = 2;
    auto cr = chaosRun(f);
    EXPECT_FALSE(cr.report.ok());
    EXPECT_EQ(cr.report.status.code, StatusCode::FaultDiagnosed);
    EXPECT_NE(cr.report.status.message.find("link-dead"),
              std::string::npos)
        << cr.report.status.message;
    EXPECT_NE(cr.report.status.message.find("stream "), std::string::npos)
        << cr.report.status.message;
    // The result-level diagnosis also names the parked endpoints.
    EXPECT_NE(cr.report.result.diagnosis.find("lost to a dead link"),
              std::string::npos)
        << cr.report.result.diagnosis;
}

} // namespace
