#include <gtest/gtest.h>

#include "core/machine.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"

namespace {

using namespace rsn;
using namespace rsn::lib;

Model
linModel(std::uint32_t m, std::uint32_t k, std::uint32_t n,
         bool bias = true)
{
    Model mod;
    mod.name = "lin";
    mod.input_rows = m;
    mod.input_cols = k;
    LinearLayer l;
    l.name = "fc";
    l.m = m;
    l.k = k;
    l.n = n;
    l.bias = bias;
    l.in_src = "input";
    l.out_name = "out";
    mod.segments.emplace_back(l);
    return mod;
}

TEST(Codegen, DeclaresAllTensors)
{
    core::RsnMachine mach(core::MachineConfig::vck190());
    auto c = compileModel(mach, linModel(96, 64, 48),
                          ScheduleOptions::optimized());
    EXPECT_TRUE(c.hasTensor("input"));
    EXPECT_TRUE(c.hasTensor("W.fc"));
    EXPECT_TRUE(c.hasTensor("b.fc"));
    EXPECT_TRUE(c.hasTensor("out"));
    EXPECT_FALSE(c.hasTensor("ln.fc"));
    EXPECT_EQ(c.tensor("W.fc").rows, 64u);
    EXPECT_EQ(c.tensor("W.fc").cols, 48u);
    EXPECT_TRUE(c.tensor("W.fc").is_weight);
    EXPECT_FALSE(c.tensor("out").is_weight);
}

TEST(Codegen, ProgramValidatesAndEndsWithHalts)
{
    core::RsnMachine mach(core::MachineConfig::vck190());
    auto c = compileModel(mach, linModel(96, 64, 48),
                          ScheduleOptions::optimized());
    c.program.validate();
    // Every FU type present in the machine gets a halt.
    int halts = 0;
    for (const auto &p : c.program.packets())
        halts += p.last;
    EXPECT_EQ(halts, kNumFuTypes);
}

TEST(Codegen, MmFlopsMatchModel)
{
    core::RsnMachine mach(core::MachineConfig::vck190());
    auto c = compileModel(mach, linModel(96, 64, 48),
                          ScheduleOptions::optimized());
    EXPECT_EQ(c.mm_flops, 2ull * 96 * 64 * 48);
}

TEST(Codegen, NoOptimizeEmitsMorePackets)
{
    // Without double buffering every chunk needs separate load/send
    // uops, and stores cannot merge into strided mOPs behind loads.
    core::RsnMachine m1(core::MachineConfig::vck190());
    auto opt = compileModel(m1, bertLargeEncoder(2, 256, true, 1),
                            ScheduleOptions::optimized());
    core::RsnMachine m2(core::MachineConfig::vck190());
    auto noopt = compileModel(m2, bertLargeEncoder(2, 256, true, 1),
                              ScheduleOptions::noOptimize());
    EXPECT_GT(noopt.program.size(), opt.program.size());
    EXPECT_GT(noopt.program.totalBytes(), opt.program.totalBytes());
}

TEST(Codegen, StrideMergeCompressesRegularLoads)
{
    // A multi-k-step GEMM produces strided LHS loads that merge; the
    // expanded uOP bytes must exceed the instruction bytes for DDR.
    core::RsnMachine mach(core::MachineConfig::vck190());
    auto opts = ScheduleOptions::optimized();
    opts.k_step = 16;
    auto c = compileModel(mach, linModel(96, 128, 48, false), opts);
    EXPECT_GT(c.program.expandedUopBytes(FuType::Ddr),
              c.program.instructionBytes(FuType::Ddr));
}

TEST(Codegen, ReuseCompressionOnScratchpadStreams)
{
    // The MemA steady state must compress into a handful of packets.
    core::RsnMachine mach(core::MachineConfig::vck190());
    auto c = compileModel(mach, linModel(768, 1024, 1024),
                          ScheduleOptions::optimized());
    // 8 k-steps -> 9-ish MemA uops but only a few packets.
    EXPECT_LE(c.program.packetCount(FuType::MemA), 8u);
    EXPECT_GE(c.program.uopCountFor({FuType::MemA, 0}), 9u);
}

TEST(Codegen, InterleavedStoresSitBetweenLoads)
{
    // In the optimized schedule, DDR store uops appear between load
    // uops rather than all trailing (Sec. 4.4).
    core::RsnMachine mach(core::MachineConfig::vck190());
    auto c = compileModel(mach, linModel(3072, 1024, 1024),
                          ScheduleOptions::optimized());
    bool store_before_last_load = false;
    bool seen_store = false;
    for (const auto &p : c.program.packets()) {
        if (p.opcode != FuType::Ddr)
            continue;
        for (const auto &m : p.mops) {
            const auto &d = std::get<isa::DdrUop>(m);
            if (d.store)
                seen_store = true;
            else if (seen_store)
                store_before_last_load = true;
        }
    }
    EXPECT_TRUE(store_before_last_load);
}

TEST(Codegen, NoOptKeepsStoresAfterTheirTileLoads)
{
    core::RsnMachine mach(core::MachineConfig::vck190());
    auto c = compileModel(mach, linModel(768, 256, 256),
                          ScheduleOptions::noOptimize());
    // Single tile: all loads precede all stores.
    bool seen_store = false;
    for (const auto &p : c.program.packets()) {
        if (p.opcode != FuType::Ddr)
            continue;
        for (const auto &m : p.mops) {
            const auto &d = std::get<isa::DdrUop>(m);
            if (d.store)
                seen_store = true;
            else
                EXPECT_FALSE(seen_store) << "load after store in no-opt "
                                            "single-tile program";
        }
    }
}

TEST(Codegen, AttentionPipelinedAvoidsScoresTensor)
{
    core::RsnMachine m1(core::MachineConfig::vck190());
    auto pipe = compileModel(m1, bertLargeEncoder(1, 128, true, 1),
                             ScheduleOptions::optimized());
    EXPECT_FALSE(pipe.hasTensor("scores.L0.attention"));

    core::RsnMachine m2(core::MachineConfig::vck190());
    auto seq = compileModel(m2, bertLargeEncoder(1, 128, true, 1),
                            ScheduleOptions::bwOptimized());
    EXPECT_TRUE(seq.hasTensor("scores.L0.attention"));
}

TEST(Codegen, CompileIsSingleUse)
{
    core::RsnMachine mach(core::MachineConfig::vck190());
    ProgramBuilder b(mach, ScheduleOptions::optimized());
    auto m = linModel(96, 64, 48);
    (void)b.compile(m);
    EXPECT_THROW((void)b.compile(m), std::logic_error);
}

TEST(Codegen, InstructionBytesScaleSubLinearlyWithWork)
{
    // Quadrupling the batch must not quadruple instruction bytes:
    // reuse compression absorbs the repetition (low-entropy control,
    // paper Sec. 1).
    core::RsnMachine m1(core::MachineConfig::vck190());
    auto small = compileModel(m1, bertLargeEncoder(1, 512, true, 1),
                              ScheduleOptions::optimized());
    core::RsnMachine m2(core::MachineConfig::vck190());
    auto big = compileModel(m2, bertLargeEncoder(4, 512, true, 1),
                            ScheduleOptions::optimized());
    double work_ratio = 4.0;
    double byte_ratio = double(big.program.totalBytes()) /
                        small.program.totalBytes();
    EXPECT_LT(byte_ratio, work_ratio);
}

TEST(Codegen, RejectsLayerNormOnPartialWidthTiles)
{
    core::RsnMachine mach(core::MachineConfig::vck190());
    Model mod;
    mod.input_rows = 96;
    mod.input_cols = 64;
    LinearLayer l;
    l.name = "fc";
    l.m = 96;
    l.k = 64;
    l.n = 2048;  // exceeds out_tile_n
    l.layernorm = true;
    l.in_src = "input";
    l.out_name = "out";
    mod.segments.emplace_back(l);
    auto opts = ScheduleOptions::optimized();
    opts.out_tile_n = 1024;
    EXPECT_THROW((void)compileModel(mach, mod, opts), std::logic_error);
}

} // namespace
