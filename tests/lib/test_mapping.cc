#include <gtest/gtest.h>

#include "lib/mapping.hh"

namespace {

using namespace rsn::lib;

AttentionWorkload
bertAttention()
{
    return AttentionWorkload{96, 512, 64};
}

TEST(Mapping, PipelineAvoidsScoreTraffic)
{
    PlatformBudget p;
    auto d = estimateMapping(MappingType::Pipeline, bertAttention(), p);
    auto a = estimateMapping(MappingType::LayerByLayer, bertAttention(),
                             p);
    // A spills + reloads ~100 MB of scores x2; D moves only Q/K/V/ctx.
    EXPECT_LT(d.traffic_mb, 60.0);
    EXPECT_GT(a.traffic_mb, 200.0);
}

TEST(Mapping, SpatialMappingsReachHigherUtilization)
{
    PlatformBudget p;
    auto a = estimateMapping(MappingType::LayerByLayer, bertAttention(),
                             p);
    auto d = estimateMapping(MappingType::Pipeline, bertAttention(), p);
    EXPECT_LT(a.aie_util, d.aie_util);
    EXPECT_NEAR(a.aie_util, 0.64, 1e-6);
    EXPECT_NEAR(d.aie_util, 0.96, 1e-6);
}

TEST(Mapping, TaskGranularMappingsPayTurnaround)
{
    PlatformBudget p;
    auto a = estimateMapping(MappingType::LayerByLayer, bertAttention(),
                             p);
    auto b = estimateMapping(MappingType::TaskByTask, bertAttention(),
                             p);
    EXPECT_GT(b.inf_flops_ms, a.inf_flops_ms);
}

TEST(Mapping, FinalIsMaxOfBounds)
{
    PlatformBudget p;
    for (auto t : {MappingType::LayerByLayer, MappingType::TaskByTask,
                   MappingType::TaskParallel, MappingType::Pipeline}) {
        auto e = estimateMapping(t, bertAttention(), p);
        EXPECT_DOUBLE_EQ(e.final_ms,
                         std::max(e.inf_flops_ms, e.inf_bw_ms));
    }
}

TEST(Mapping, PipelineWinsForBertAttention)
{
    PlatformBudget p;
    EXPECT_EQ(bestMapping(bertAttention(), p), MappingType::Pipeline);
}

TEST(Mapping, OrderingMatchesPaperTable3)
{
    // D < A < B == C in final latency.
    PlatformBudget p;
    auto a = estimateMapping(MappingType::LayerByLayer, bertAttention(),
                             p)
                 .final_ms;
    auto b = estimateMapping(MappingType::TaskByTask, bertAttention(), p)
                 .final_ms;
    auto c = estimateMapping(MappingType::TaskParallel, bertAttention(),
                             p)
                 .final_ms;
    auto d = estimateMapping(MappingType::Pipeline, bertAttention(), p)
                 .final_ms;
    EXPECT_LT(d, a);
    EXPECT_LT(a, b);
    EXPECT_NEAR(b, c, b * 0.2);
}

TEST(Mapping, LinearBoundednessMatchesRoofline)
{
    PlatformBudget p;
    // FF1 is compute-bound on the VCK190 budget; a skinny GEMM is not.
    EXPECT_TRUE(linearIsComputeBound(3072, 1024, 4096, p));
    EXPECT_FALSE(linearIsComputeBound(512, 64, 512, p));
}

TEST(Mapping, IntermediateBytesForPipelining)
{
    // BERT-Large FF intermediate (3072 x 4096 FP32) exceeds on-chip
    // capacity -> cannot pipeline FF1/FF2 (Sec. 4.3).
    EXPECT_GT(pipelineIntermediateBytes(3072, 4096), 25ull << 20);
    // One attention head's scores fit.
    EXPECT_LT(pipelineIntermediateBytes(512, 512), 2ull << 20);
}

TEST(Mapping, NamesAreDistinct)
{
    EXPECT_STRNE(mappingName(MappingType::LayerByLayer),
                 mappingName(MappingType::Pipeline));
}

} // namespace
