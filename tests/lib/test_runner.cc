#include <gtest/gtest.h>

#include "core/machine.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/runner.hh"

namespace {

using namespace rsn;
using core::MachineConfig;
using core::RsnMachine;

lib::Model
smallLinear()
{
    lib::Model mod;
    mod.name = "s";
    mod.input_rows = 24;
    mod.input_cols = 16;
    lib::LinearLayer l;
    l.name = "fc";
    l.m = 24;
    l.k = 16;
    l.n = 12;
    l.bias = true;
    l.in_src = "input";
    l.out_name = "out";
    mod.segments.emplace_back(l);
    return mod;
}

TEST(Runner, InitTensorsFillsInputsAndWeightsOnly)
{
    RsnMachine mach(MachineConfig::vck190(true));
    auto c = lib::compileModel(mach, smallLinear(),
                               lib::ScheduleOptions::optimized());
    lib::initTensors(mach, c, 5);
    auto in = lib::readTensor(mach, c, "input");
    auto w = lib::readTensor(mach, c, "W.fc");
    auto out = lib::readTensor(mach, c, "out");
    // Inputs/weights randomized, activations zero until the run.
    EXPECT_NE(in.at(0, 0), 0.f);
    EXPECT_NE(w.at(0, 0), 0.f);
    for (float v : out.data)
        EXPECT_EQ(v, 0.f);
}

TEST(Runner, InitIsDeterministicPerSeed)
{
    RsnMachine m1(MachineConfig::vck190(true));
    auto c1 = lib::compileModel(m1, smallLinear(),
                                lib::ScheduleOptions::optimized());
    lib::initTensors(m1, c1, 9);
    RsnMachine m2(MachineConfig::vck190(true));
    auto c2 = lib::compileModel(m2, smallLinear(),
                                lib::ScheduleOptions::optimized());
    lib::initTensors(m2, c2, 9);
    EXPECT_EQ(lib::readTensor(m1, c1, "W.fc").data,
              lib::readTensor(m2, c2, "W.fc").data);
    RsnMachine m3(MachineConfig::vck190(true));
    auto c3 = lib::compileModel(m3, smallLinear(),
                                lib::ScheduleOptions::optimized());
    lib::initTensors(m3, c3, 10);
    EXPECT_NE(lib::readTensor(m1, c1, "W.fc").data,
              lib::readTensor(m3, c3, "W.fc").data);
}

TEST(Runner, InitIsNoOpOnTimingOnlyMachines)
{
    RsnMachine mach(MachineConfig::vck190(false));
    auto c = lib::compileModel(mach, smallLinear(),
                               lib::ScheduleOptions::optimized());
    lib::initTensors(mach, c, 5);  // must not throw or allocate data
    EXPECT_FALSE(mach.host().functional());
}

TEST(Runner, ReferenceForwardProducesEverySegmentOutput)
{
    RsnMachine mach(MachineConfig::vck190(true));
    auto model = lib::tinyEncoder(1, 16, 32, 4, 48, true);
    auto c = lib::compileModel(mach, model,
                               lib::ScheduleOptions::optimized());
    lib::initTensors(mach, c, 3);
    auto refs = lib::referenceForward(mach, model, c);
    for (const char *name :
         {"L0.qkv_out", "L0.attn_out", "L0.dense_out", "L0.ff1_out",
          "L0.encoder_out"})
        EXPECT_TRUE(refs.count(name)) << name;
    // Shapes follow the model.
    EXPECT_EQ(refs.at("L0.qkv_out").cols, 96u);
    EXPECT_EQ(refs.at("L0.encoder_out").rows, 16u);
}

TEST(Runner, ReadTensorRejectsUnknownName)
{
    RsnMachine mach(MachineConfig::vck190(true));
    auto c = lib::compileModel(mach, smallLinear(),
                               lib::ScheduleOptions::optimized());
    EXPECT_THROW((void)lib::readTensor(mach, c, "nope"),
                 std::runtime_error);
}

} // namespace
