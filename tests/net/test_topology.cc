#include <gtest/gtest.h>

#include "core/machine.hh"
#include "net/topology.hh"

namespace {

using namespace rsn;
using net::Edge;
using net::Topology;

FuId
mme(int i)
{
    return {FuType::Mme, std::uint8_t(i)};
}
constexpr FuId kMeshA{FuType::MeshA, 0};
constexpr FuId kDdr{FuType::Ddr, 0};

TEST(Topology, NodeAndEdgeLookup)
{
    Topology t;
    t.addNode(kDdr);
    t.addNode(kMeshA);
    t.addEdge({kDdr, kMeshA, 128.0, 2});
    EXPECT_TRUE(t.hasNode(kDdr));
    EXPECT_FALSE(t.hasNode(mme(0)));
    EXPECT_TRUE(t.hasEdge(kDdr, kMeshA));
    EXPECT_FALSE(t.hasEdge(kMeshA, kDdr));  // directed
    ASSERT_NE(t.findEdge(kDdr, kMeshA), nullptr);
    EXPECT_DOUBLE_EQ(t.findEdge(kDdr, kMeshA)->bytes_per_tick, 128.0);
}

TEST(Topology, ValidateCatchesDanglingEdge)
{
    Topology t;
    t.addNode(kDdr);
    t.addEdge({kDdr, kMeshA, 128.0, 2});  // MeshA not a node
    EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Topology, ValidateCatchesSelfLoopAndDuplicates)
{
    Topology t;
    t.addNode(kDdr);
    t.addNode(kMeshA);
    t.addEdge({kDdr, kDdr, 128.0, 2});
    EXPECT_THROW(t.validate(), std::runtime_error);

    Topology t2;
    t2.addNode(kDdr);
    t2.addNode(kMeshA);
    t2.addEdge({kDdr, kMeshA, 128.0, 2});
    t2.addEdge({kDdr, kMeshA, 64.0, 2});
    EXPECT_THROW(t2.validate(), std::runtime_error);
}

TEST(Topology, InOutEdgesAndAggregateBandwidth)
{
    Topology t;
    t.addNode(kDdr);
    t.addNode(kMeshA);
    t.addNode(mme(0));
    t.addEdge({kDdr, kMeshA, 100.0, 2});
    t.addEdge({kMeshA, mme(0), 50.0, 2});
    EXPECT_EQ(t.inEdges(kMeshA).size(), 1u);
    EXPECT_EQ(t.outEdges(kMeshA).size(), 1u);
    EXPECT_DOUBLE_EQ(t.aggregateBandwidth(kMeshA), 150.0);
}

TEST(Topology, PathConnectivity)
{
    Topology t;
    t.addNode(kDdr);
    t.addNode(kMeshA);
    t.addNode(mme(0));
    t.addEdge({kDdr, kMeshA, 100.0, 2});
    t.addEdge({kMeshA, mme(0), 50.0, 2});
    std::string why;
    EXPECT_TRUE(t.pathConnected({kDdr, kMeshA, mme(0)}, &why));
    EXPECT_FALSE(t.pathConnected({kDdr, mme(0)}, &why));
    EXPECT_FALSE(why.empty());
}

TEST(Topology, DotExportNamesEveryNode)
{
    Topology t;
    t.addNode(kDdr);
    t.addNode(kMeshA);
    t.addEdge({kDdr, kMeshA, 100.0, 2});
    std::string dot = t.toDot("g");
    EXPECT_NE(dot.find("digraph g"), std::string::npos);
    EXPECT_NE(dot.find("\"DDR\""), std::string::npos);
    EXPECT_NE(dot.find("\"DDR\" -> \"MeshA\""), std::string::npos);
}

TEST(RsnXnnTopology, MatchesPaperFigure10Structure)
{
    auto cfg = core::MachineConfig::vck190();
    auto t = core::buildRsnXnnTopology(cfg);
    // 6 MME + 3 MemA + 3 MemB + 6 MemC + 2 mesh + DDR + LPDDR = 22.
    EXPECT_EQ(t.nodes().size(), 22u);

    // Every MME reads LHS from MeshA, RHS from MeshB, writes its own
    // MemC partner.
    for (int i = 0; i < 6; ++i) {
        EXPECT_TRUE(t.hasEdge({FuType::MeshA, 0}, mme(i)));
        EXPECT_TRUE(t.hasEdge({FuType::MeshB, 0}, mme(i)));
        EXPECT_TRUE(t.hasEdge(mme(i),
                              {FuType::MemC, std::uint8_t(i)}));
        // No cross partner.
        EXPECT_FALSE(t.hasEdge(mme(i),
                               {FuType::MemC,
                                std::uint8_t((i + 1) % 6)}));
    }
    // Dynamic chaining: MemC re-injects into both meshes.
    EXPECT_TRUE(t.hasEdge({FuType::MemC, 0}, {FuType::MeshA, 0}));
    EXPECT_TRUE(t.hasEdge({FuType::MemC, 0}, {FuType::MeshB, 0}));
    // Off-chip movers reach the scratchpads.
    EXPECT_TRUE(t.hasEdge(kDdr, {FuType::MemA, 0}));
    EXPECT_TRUE(t.hasEdge(kDdr, {FuType::MemB, 2}));
    EXPECT_TRUE(t.hasEdge({FuType::Lpddr, 0}, {FuType::MemB, 0}));
    // Store path.
    EXPECT_TRUE(t.hasEdge({FuType::MemC, 5}, kDdr));
    t.validate();  // must not throw

    // The attention pipeline path is connected end to end.
    std::string why;
    EXPECT_TRUE(t.pathConnected({kDdr,
                                 {FuType::MemA, 0},
                                 {FuType::MeshA, 0},
                                 mme(0),
                                 {FuType::MemC, 0},
                                 {FuType::MeshA, 0},
                                 mme(3),
                                 {FuType::MemC, 3},
                                 kDdr},
                                &why))
        << why;
}

TEST(RsnXnnTopology, MeshesHaveNoMemoryOrCompute)
{
    core::RsnMachine m(core::MachineConfig::vck190());
    EXPECT_DOUBLE_EQ(m.fuPeakTflops({FuType::MeshA, 0}), 0.0);
    EXPECT_EQ(m.fuMemoryBytes({FuType::MeshA, 0}), 0u);
    EXPECT_GT(m.fuPeakTflops(mme(0)), 1.0);
    EXPECT_EQ(m.fuMemoryBytes(mme(0)), 590u * 1024);
    EXPECT_EQ(m.fuMemoryBytes({FuType::MemB, 0}), 512u * 1024);
    EXPECT_EQ(m.fuMemoryBytes({FuType::MemB, 2}), 256u * 1024);
}

} // namespace
