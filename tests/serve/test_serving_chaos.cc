/**
 * @file
 * Chaos-serving tier (serve/scheduler.hh): the serving determinism and
 * no-hang contracts under injected faults.
 *
 * Pins, per ISSUE 9's acceptance criteria:
 *  - same (seed, spec, load) => bit-identical ServingReport at any
 *    --jobs value (identity through runServingSweep, including the
 *    byte-compared toString rendering);
 *  - every injected hard fault resolves as retried / shed / timeout /
 *    faulted — the census always sums to the offered count, never a
 *    hang (the event loop drains or the in-scheduler assert throws);
 *  - circuit-breaker open -> half-open -> close transitions;
 *  - faults-off golden ticks stay bit-exact: a two-request batch of the
 *    golden tiny-encoder class costs exactly 11084 ticks end to end.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/arrivals.hh"
#include "serve/latency.hh"
#include "serve/scheduler.hh"
#include "sim/fault.hh"

namespace {

using namespace rsn;

/** Keep in sync with tests/lib/test_golden_e2e.cc. */
constexpr Tick kTinyEncoderGoldenTicks = 11084;

serve::ServeSpec
chaosSpec(double load)
{
    serve::ServeSpec spec;
    spec.cfg = core::MachineConfig::vck190(/*functional=*/true);
    spec.cfg.fault = sim::FaultSpec::chaosPreset(/*seed=*/7);
    spec.classes = serve::defaultClasses();
    spec.policy.fleet = 2;
    spec.policy.max_batch = 4;
    spec.seed = 1;
    spec.offered_load = load;
    spec.num_requests = 32;
    return spec;
}

TEST(ServingChaos, ReportsBitIdenticalAtAnyJobs)
{
    const std::vector<double> loads = {10000, 20000, 40000};
    std::vector<serve::ServeSpec> specs;
    for (double l : loads)
        specs.push_back(chaosSpec(l));

    const auto seq =
        serve::runServingSweep(lib::SweepExecutor(1), specs);
    const auto par =
        serve::runServingSweep(lib::SweepExecutor(4), specs);

    ASSERT_EQ(seq.size(), specs.size());
    ASSERT_EQ(par.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(seq[i], par[i])
            << "load " << loads[i] << " diverged between jobs=1 and 4";
        // The smoke's byte-compared artifact, pinned in-process too.
        EXPECT_EQ(seq[i].toString(), par[i].toString());
        EXPECT_EQ(seq[i].resolved(), seq[i].offered);
    }
    // And a repeat run is identical to itself (no hidden state).
    const auto again = serve::runServing(specs[0]);
    EXPECT_EQ(again, seq[0]);
}

TEST(ServingChaos, EveryRequestResolvesUnderChaos)
{
    // Chaos preset: transient faults with recovery plus occasional hard
    // faults. The census must account for every arrival — ok, retried,
    // shed, timeout, or faulted; a hang would trip the scheduler's
    // drain assert (std::logic_error) or this sum.
    auto spec = chaosSpec(40000);
    spec.policy.deadline = 200000;
    spec.policy.queue_capacity = 8;
    const auto rep = serve::runServing(spec);
    EXPECT_EQ(rep.offered, spec.num_requests);
    EXPECT_EQ(rep.ok + rep.retried + rep.shed + rep.timeout + rep.faulted,
              rep.offered);
    EXPECT_GT(rep.faults_injected, 0u);
    EXPECT_GT(rep.runs, 0u);
}

TEST(ServingChaos, HardFaultsEndAsRetriedOrFaultedNeverHang)
{
    // Every run hard-faults (certain drop, no link-layer retries): all
    // requests must exhaust their serve-layer retries and resolve
    // faulted; the breaker must quarantine (and trim) repeatedly; and
    // the loop must still terminate.
    auto spec = chaosSpec(20000);
    Status st;
    spec.cfg.fault =
        sim::FaultSpec::parse("seed=1,link_drop=1.0,retries=0", &st);
    ASSERT_TRUE(st.ok()) << st.toString();
    spec.policy.max_retries = 2;
    const auto rep = serve::runServing(spec);
    EXPECT_EQ(rep.faulted, rep.offered);
    EXPECT_EQ(rep.ok + rep.retried, 0u);
    EXPECT_GT(rep.breaker_opened, 0u);
    EXPECT_GT(rep.pool_trimmed, 0u);
    EXPECT_EQ(rep.breaker_closed, 0u);  // No run ever succeeds.
    // Each request was dispatched at most 1 + max_retries times.
    EXPECT_LE(rep.retry_dispatches,
              rep.offered * spec.policy.max_retries);
}

TEST(ServingChaos, BreakerOpensHalfOpensAndCloses)
{
    // A moderate certain-hard-fault rate: some runs fault (opening
    // breakers), some succeed (closing them from half-open). The
    // counts pin the full open -> half-open -> close cycle.
    auto spec = chaosSpec(20000);
    spec.num_requests = 64;  // Enough dispatches to close from half-open.
    Status st;
    spec.cfg.fault =
        sim::FaultSpec::parse("seed=1,link_drop=0.003,retries=0", &st);
    ASSERT_TRUE(st.ok()) << st.toString();
    spec.policy.max_retries = 4;
    const auto rep = serve::runServing(spec);
    EXPECT_GT(rep.breaker_opened, 0u);
    EXPECT_GT(rep.breaker_half_opened, 0u);
    EXPECT_GT(rep.breaker_closed, 0u);
    // Every open eventually half-opens (cooldown always fires).
    EXPECT_EQ(rep.breaker_opened, rep.breaker_half_opened);
    EXPECT_GT(rep.pool_trimmed, 0u);
    EXPECT_EQ(rep.resolved(), rep.offered);
}

TEST(ServingChaos, FaultsOffGoldenTicksBitExact)
{
    // Two simultaneous arrivals of the golden tiny-encoder class on a
    // one-slot fleet with max_batch=2: exactly one batch-of-2 run, so
    // the slower request's queue-to-completion latency IS the golden
    // tick count — the serving layer adds no hidden time.
    serve::ServeSpec spec;
    spec.cfg = core::MachineConfig::vck190(/*functional=*/true);
    spec.classes = serve::defaultClasses();
    spec.policy.fleet = 1;
    spec.policy.max_batch = 2;
    spec.trace = {{0, 0}, {0, 0}};
    const auto rep = serve::runServing(spec);
    EXPECT_EQ(rep.offered, 2u);
    EXPECT_EQ(rep.ok, 2u);
    EXPECT_EQ(rep.runs, 1u);
    EXPECT_EQ(rep.max_latency, kTinyEncoderGoldenTicks);
    EXPECT_EQ(rep.horizon, kTinyEncoderGoldenTicks);
    EXPECT_EQ(rep.faults_injected, 0u);
    EXPECT_EQ(rep.machines_built, 1u);
}

TEST(ServingChaos, DeadlinesCancelQueuedWorkAndLateCompletions)
{
    // A deadline shorter than one service time: requests that wait in
    // queue behind the first batch (or complete late) must resolve
    // timeout, never ok — and nothing hangs.
    serve::ServeSpec spec;
    spec.cfg = core::MachineConfig::vck190(/*functional=*/false);
    spec.classes = serve::defaultClasses();
    spec.policy.fleet = 1;
    spec.policy.max_batch = 1;
    spec.policy.deadline = kTinyEncoderGoldenTicks + 2000;
    spec.trace = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
    const auto rep = serve::runServing(spec);
    EXPECT_EQ(rep.resolved(), 4u);
    EXPECT_GE(rep.timeout, 2u);
    EXPECT_GE(rep.ok, 1u);  // The head of the line makes its deadline.
}

TEST(ServingChaos, SheddingBoundsQueueDepth)
{
    auto spec = chaosSpec(400000);  // Far over fleet capacity.
    spec.cfg.fault = sim::FaultSpec{};  // Faults off: pure overload.
    spec.cfg.functional = false;
    spec.policy.queue_capacity = 4;
    const auto rep = serve::runServing(spec);
    EXPECT_GT(rep.shed, 0u);
    EXPECT_LE(rep.max_queue_depth, 4u);
    EXPECT_EQ(rep.resolved(), rep.offered);
    // Shed requests never consume fleet time.
    EXPECT_LT(rep.runs, rep.offered);
}

TEST(ServingArrivals, PoissonStreamIsSeededAndWeighted)
{
    const auto classes = serve::defaultClasses();
    const auto a = serve::poissonArrivals(42, 1000, 256, classes);
    const auto b = serve::poissonArrivals(42, 1000, 256, classes);
    const auto c = serve::poissonArrivals(43, 1000, 256, classes);
    ASSERT_EQ(a.size(), 256u);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    // Ticks strictly increase (gaps clamp to >= 1).
    std::size_t heavy = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) {
            EXPECT_GT(a[i].tick, a[i - 1].tick);
        }
        heavy += a[i].cls == 0;
    }
    // 3:1 mix: the heavy class dominates but both appear.
    EXPECT_GT(heavy, 128u);
    EXPECT_LT(heavy, 256u);
}

TEST(ServingArrivals, TraceParsingValidates)
{
    Status st;
    const auto ok = serve::parseTrace("# demo\n0 0\n5 1\n\n9 0\n", 2, &st);
    ASSERT_TRUE(st.ok()) << st.toString();
    ASSERT_EQ(ok.size(), 3u);
    EXPECT_EQ(ok[1], (serve::Arrival{5, 1}));

    serve::parseTrace("0 7\n", 2, &st);
    EXPECT_EQ(st.code, StatusCode::InvalidConfig);
    serve::parseTrace("5 0\n4 0\n", 2, &st);
    EXPECT_EQ(st.code, StatusCode::InvalidConfig);
    serve::parseTrace("x 0\n", 2, &st);
    EXPECT_EQ(st.code, StatusCode::InvalidConfig);
}

TEST(ServingLatency, HistogramBucketsAndQuantilesAreExactIntegers)
{
    using H = serve::LatencyHistogram;
    // Bucket mapping round-trips: a bucket's lower bound maps to the
    // bucket, and values below kSub are exact.
    for (unsigned b = 0; b < 200; ++b)
        EXPECT_EQ(H::bucketFor(H::bucketLowerBound(b)), b) << b;
    EXPECT_EQ(H::bucketLowerBound(H::bucketFor(11084)),
              Tick(10240));  // 2^13 + 2*2^10: 12.5% resolution floor.

    H h;
    EXPECT_EQ(h.quantilePermille(990), 0u);
    for (Tick v = 1; v <= 100; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_EQ(h.p50(), H::bucketLowerBound(H::bucketFor(50)));
    EXPECT_EQ(h.p99(), H::bucketLowerBound(H::bucketFor(99)));
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
    h.record(1u << 30);
    EXPECT_EQ(h.max(), Tick(1) << 30);
}

} // namespace
