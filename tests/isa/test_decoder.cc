#include <gtest/gtest.h>

#include <memory>

#include "fu/fu.hh"
#include "isa/decoder.hh"
#include "sim/engine.hh"

namespace {

using namespace rsn;
using namespace rsn::isa;

/** Minimal FU that records received uOPs and optionally takes time. */
class RecorderFu : public fu::Fu
{
  public:
    RecorderFu(sim::Engine &eng, FuId id, Tick per_kernel = 0,
               std::size_t depth = fu::Fu::kDefaultUopDepth)
        : Fu(eng, id, depth), per_kernel_(per_kernel)
    {
    }

    std::vector<Uop> seen;

  protected:
    sim::Task
    runKernel(const Uop &u) override
    {
        seen.push_back(u);
        if (per_kernel_)
            co_await eng_.delay(per_kernel_);
    }

  private:
    Tick per_kernel_;
};

struct DecoderRig {
    sim::Engine eng;
    std::vector<std::unique_ptr<RecorderFu>> fus;
    DecoderUnit dec{eng, DecoderUnit::Config{}};

    RecorderFu &
    add(FuType t, int idx, Tick per_kernel = 0,
        std::size_t depth = fu::Fu::kDefaultUopDepth)
    {
        fus.push_back(std::make_unique<RecorderFu>(
            eng, FuId{t, std::uint8_t(idx)}, per_kernel, depth));
        dec.attach(fus.back().get());
        return *fus.back();
    }

    void
    start(const RsnProgram &prog)
    {
        for (auto &f : fus)
            f->start();
        dec.start(prog);
    }
};

RsnPacket
memaPacket(std::uint8_t mask, std::uint16_t reuse, int window = 1,
           bool last = false)
{
    RsnPacket p;
    p.opcode = FuType::MemA;
    p.mask = mask;
    p.reuse = reuse;
    p.last = last;
    for (int i = 0; i < window; ++i) {
        MemAUop u;
        u.rows = std::uint16_t(16 + i);
        u.cols = 8;
        u.slices = 1;
        u.load = true;
        p.mops.emplace_back(u);
    }
    return p;
}

std::array<int, kNumFuTypes>
onlyMemA(int n)
{
    std::array<int, kNumFuTypes> c{};
    c[static_cast<int>(FuType::MemA)] = n;
    return c;
}

TEST(Decoder, DeliversUopsAndHalts)
{
    DecoderRig rig;
    auto &fu = rig.add(FuType::MemA, 0);
    RsnProgram prog;
    prog.append(memaPacket(0x1, 3));
    prog.appendHalts(onlyMemA(1));
    rig.start(prog);
    ASSERT_TRUE(rig.eng.run());
    EXPECT_TRUE(fu.halted());
    EXPECT_EQ(fu.seen.size(), 3u);  // reuse replayed the window
    EXPECT_TRUE(rig.dec.done());
    EXPECT_EQ(rig.dec.packetsFetched(), 2u);
}

TEST(Decoder, ReuseReplaysWholeWindowInOrder)
{
    DecoderRig rig;
    auto &fu = rig.add(FuType::MemA, 0);
    RsnProgram prog;
    prog.append(memaPacket(0x1, 2, /*window=*/3));
    prog.appendHalts(onlyMemA(1));
    rig.start(prog);
    ASSERT_TRUE(rig.eng.run());
    ASSERT_EQ(fu.seen.size(), 6u);
    // Pattern: rows 16,17,18,16,17,18.
    EXPECT_EQ(std::get<MemAUop>(fu.seen[0]).rows, 16u);
    EXPECT_EQ(std::get<MemAUop>(fu.seen[2]).rows, 18u);
    EXPECT_EQ(std::get<MemAUop>(fu.seen[3]).rows, 16u);
    EXPECT_EQ(std::get<MemAUop>(fu.seen[5]).rows, 18u);
}

TEST(Decoder, UopCacheExpandsOncePerPacketAndReplays)
{
    // A window of 3 mOPs replayed 5 times: the second-level decoder
    // must expand the window exactly once and issue the other 4 passes
    // from its uOP cache (ISSUE 4) — with issue order and totals
    // identical to re-expanding every pass.
    DecoderRig rig;
    auto &fu = rig.add(FuType::MemA, 0);
    RsnProgram prog;
    prog.append(memaPacket(0x1, /*reuse=*/5, /*window=*/3));
    prog.appendHalts(onlyMemA(1));
    rig.start(prog);
    ASSERT_TRUE(rig.eng.run());
    ASSERT_EQ(fu.seen.size(), 15u);
    for (int pass = 0; pass < 5; ++pass)
        for (int i = 0; i < 3; ++i)
            EXPECT_EQ(std::get<MemAUop>(fu.seen[pass * 3 + i]).rows,
                      16 + i)
                << "pass " << pass << " uop " << i;
    EXPECT_EQ(rig.dec.uopExpansions(), 3u);
    EXPECT_EQ(rig.dec.uopCacheReplays(), 12u);  // 4 cached passes x 3
    EXPECT_EQ(rig.dec.uopsIssued(), 16u);       // 15 + halt
}

TEST(Decoder, MaskFansOutToSelectedInstances)
{
    DecoderRig rig;
    auto &a0 = rig.add(FuType::MemA, 0);
    auto &a1 = rig.add(FuType::MemA, 1);
    auto &a2 = rig.add(FuType::MemA, 2);
    RsnProgram prog;
    prog.append(memaPacket(0x5, 4));  // instances 0 and 2 only
    prog.appendHalts(onlyMemA(3));
    rig.start(prog);
    ASSERT_TRUE(rig.eng.run());
    EXPECT_EQ(a0.seen.size(), 4u);
    EXPECT_EQ(a1.seen.size(), 0u);
    EXPECT_EQ(a2.seen.size(), 4u);
    EXPECT_TRUE(a1.halted());  // halts still delivered
}

TEST(Decoder, StridedDdrMopExpandsAtSecondLevel)
{
    DecoderRig rig;
    auto &ddr = rig.add(FuType::Ddr, 0);
    RsnProgram prog;
    RsnPacket p;
    p.opcode = FuType::Ddr;
    p.mask = 1;
    DdrUop u;
    u.load = true;
    u.dest = {FuType::MemA, 0};
    u.addr = 0x1000;
    u.stride_count = 5;
    u.stride_offset = 0x40;
    u.rows = u.cols = u.pitch = 4;
    p.mops.emplace_back(u);
    prog.append(p);
    std::array<int, kNumFuTypes> c{};
    c[static_cast<int>(FuType::Ddr)] = 1;
    prog.appendHalts(c);
    rig.start(prog);
    ASSERT_TRUE(rig.eng.run());
    ASSERT_EQ(ddr.seen.size(), 5u);
    EXPECT_EQ(std::get<DdrUop>(ddr.seen[4]).addr, 0x1000u + 4 * 0x40);
    EXPECT_EQ(rig.dec.uopsIssued(), 6u);  // 5 expanded + 1 halt
}

TEST(Decoder, TypesDecodeIndependently)
{
    // A slow MemA does not block MemB deliveries.
    DecoderRig rig;
    auto &a = rig.add(FuType::MemA, 0, /*per_kernel=*/10000);
    auto &b = rig.add(FuType::MemB, 0);
    RsnProgram prog;
    prog.append(memaPacket(0x1, 10));
    RsnPacket pb;
    pb.opcode = FuType::MemB;
    pb.mask = 1;
    pb.reuse = 4;
    pb.mops.emplace_back(MemBUop{});
    prog.append(pb);
    std::array<int, kNumFuTypes> c{};
    c[static_cast<int>(FuType::MemA)] = 1;
    c[static_cast<int>(FuType::MemB)] = 1;
    prog.appendHalts(c);
    rig.start(prog);
    // Run a slice: MemB should be done long before MemA.
    rig.eng.run(5000);
    EXPECT_EQ(b.seen.size(), 4u);
    EXPECT_LT(a.seen.size(), 10u);
    rig.eng.run();
    EXPECT_EQ(a.seen.size(), 10u);
}

TEST(Decoder, FetchStallDeadlockScenario)
{
    // Paper Sec. 3.3: FU1 waits for data whose producer's instruction
    // sits behind many FU1 packets; shallow FIFOs deadlock. Model: MemA0
    // blocks forever (simulated by a kernel that waits on a stream that
    // never delivers) while many distinct MemA packets precede the DDR
    // packet.
    sim::Engine eng;

    // MemA with a tiny queue, blocked on a stream with no producer.
    class BlockedFu : public fu::Fu
    {
      public:
        BlockedFu(sim::Engine &e, FuId id, sim::Stream &s)
            : Fu(e, id, 2), s_(s)
        {
        }

      protected:
        sim::Task
        runKernel(const Uop &) override
        {
            (void)co_await s_.recv();  // never satisfied by MemA alone
        }

      private:
        sim::Stream &s_;
    };

    sim::Stream data(eng, 64.0, 2, "ddr->mema");
    BlockedFu mema(eng, {FuType::MemA, 0}, data);

    // DDR FU that would feed the stream when it gets its uop.
    class FeederFu : public fu::Fu
    {
      public:
        FeederFu(sim::Engine &e, FuId id, sim::Stream &s) : Fu(e, id),
                                                            s_(s)
        {
        }

      protected:
        sim::Task
        runKernel(const Uop &) override
        {
            co_await s_.send(sim::makeChunk(1, 1));
        }

      private:
        sim::Stream &s_;
    };
    FeederFu ddr(eng, {FuType::Ddr, 0}, data);

    DecoderUnit dec(eng, DecoderUnit::Config{/*fetch_fifo=*/1, 1, 1});
    dec.attach(&mema);
    dec.attach(&ddr);

    // Many *distinct* MemA packets (window batching cannot merge them)
    // ahead of the single DDR packet that unblocks everything.
    RsnProgram prog;
    for (int i = 0; i < 12; ++i)
        prog.append(memaPacket(0x1, 1, 1));
    RsnPacket dp;
    dp.opcode = FuType::Ddr;
    dp.mask = 1;
    DdrUop du;
    du.load = true;
    du.rows = du.cols = du.pitch = 1;
    du.dest = {FuType::MemA, 0};
    dp.mops.emplace_back(du);
    // DDR must feed one chunk per MemA kernel.
    dp.reuse = 12;
    prog.append(dp);
    std::array<int, kNumFuTypes> c{};
    c[static_cast<int>(FuType::MemA)] = 1;
    c[static_cast<int>(FuType::Ddr)] = 1;
    prog.appendHalts(c);

    mema.start();
    ddr.start();
    dec.start(prog);
    ASSERT_TRUE(eng.run());
    // Quiesced but not done: the classic fetch-stall deadlock.
    EXPECT_FALSE(dec.done());
    EXPECT_FALSE(mema.halted());
    EXPECT_NE(dec.stateString().find("fetch"), std::string::npos);
}

TEST(Decoder, InstructionByteAccountingMatchesProgram)
{
    DecoderRig rig;
    rig.add(FuType::MemA, 0);
    RsnProgram prog;
    prog.append(memaPacket(0x1, 2));
    prog.append(memaPacket(0x1, 5, 2));
    prog.appendHalts(onlyMemA(1));
    rig.start(prog);
    ASSERT_TRUE(rig.eng.run());
    EXPECT_EQ(rig.dec.instructionBytesFetched(), prog.totalBytes());
}

} // namespace
