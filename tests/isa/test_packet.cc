#include <gtest/gtest.h>

#include "isa/packet.hh"

namespace {

using namespace rsn;
using namespace rsn::isa;

RsnPacket
samplePacket()
{
    RsnPacket p;
    p.opcode = FuType::MemA;
    p.mask = 0x5;
    p.reuse = 12;
    MemAUop u;
    u.rows = 768;
    u.cols = 128;
    u.slices = 6;
    u.src = {FuType::Ddr, 0};
    u.load = true;
    u.send = true;
    p.mops.emplace_back(u);
    return p;
}

TEST(PacketHeader, EncodesAllFields)
{
    RsnPacket p = samplePacket();
    p.last = true;
    std::uint32_t w = p.headerWord();
    RsnPacket q = RsnPacket::fromHeaderWord(w);
    EXPECT_EQ(q.opcode, p.opcode);
    EXPECT_EQ(q.mask, p.mask);
    EXPECT_EQ(q.last, p.last);
    EXPECT_EQ(q.reuse, p.reuse);
    EXPECT_EQ(q.mops.size(), p.mops.size());  // window placeholder
}

class HeaderRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(HeaderRoundTrip, AllFieldCombinations)
{
    auto [opcode, mask, reuse] = GetParam();
    RsnPacket p;
    p.opcode = static_cast<FuType>(opcode);
    p.mask = static_cast<std::uint8_t>(mask);
    p.reuse = static_cast<std::uint16_t>(reuse);
    p.mops.resize(opcode % 7);
    RsnPacket q = RsnPacket::fromHeaderWord(p.headerWord());
    EXPECT_EQ(q.opcode, p.opcode);
    EXPECT_EQ(q.mask, p.mask);
    EXPECT_EQ(q.reuse, p.reuse);
    EXPECT_EQ(q.mops.size(), p.mops.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeaderRoundTrip,
    ::testing::Combine(::testing::Values(0, 3, 7),
                       ::testing::Values(1, 0x3f, 0xff),
                       ::testing::Values(1, 128, 4095)));

TEST(PacketValidation, RejectsBadFields)
{
    std::string why;
    RsnPacket p = samplePacket();
    EXPECT_TRUE(p.valid(&why)) << why;

    RsnPacket bad = p;
    bad.mask = 0;
    EXPECT_FALSE(bad.valid(&why));

    bad = p;
    bad.reuse = 0;
    EXPECT_FALSE(bad.valid(&why));

    bad = p;
    bad.mops.clear();  // non-last with empty window
    EXPECT_FALSE(bad.valid(&why));
    bad.last = true;
    EXPECT_TRUE(bad.valid(&why));

    bad = p;
    bad.opcode = FuType::Mme;  // MemA uop under MME opcode
    EXPECT_FALSE(bad.valid(&why));
}

TEST(ExpandMop, StridedDdrUnrollsPerBlock)
{
    DdrUop u;
    u.load = true;
    u.dest = {FuType::MemA, 0};
    u.addr = 0x1000;
    u.stride_count = 4;
    u.stride_offset = 0x100;
    u.rows = 8;
    u.cols = 8;
    u.pitch = 8;
    auto uops = expandMop(Uop{u});
    ASSERT_EQ(uops.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        const auto &d = std::get<DdrUop>(uops[i]);
        EXPECT_EQ(d.addr, 0x1000u + i * 0x100u);
        EXPECT_EQ(d.stride_count, 1u);
        EXPECT_EQ(d.rows, 8u);
    }
}

TEST(ExpandMop, NonStridedPassesThrough)
{
    MmeUop u;
    u.reps = 4;
    auto uops = expandMop(Uop{u});
    ASSERT_EQ(uops.size(), 1u);
    EXPECT_EQ(std::get<MmeUop>(uops[0]).reps, 4u);
}

TEST(Program, CountsBytesAndPackets)
{
    RsnProgram prog;
    prog.append(samplePacket());
    prog.append(samplePacket());
    RsnPacket ddr;
    ddr.opcode = FuType::Ddr;
    ddr.mask = 1;
    DdrUop du;
    du.load = true;
    du.dest = {FuType::MemA, 0};
    du.rows = du.cols = du.pitch = 8;
    ddr.mops.emplace_back(du);
    prog.append(ddr);

    EXPECT_EQ(prog.packetCount(FuType::MemA), 2u);
    EXPECT_EQ(prog.packetCount(FuType::Ddr), 1u);
    EXPECT_EQ(prog.instructionBytes(FuType::MemA),
              2 * (4 + MemAUop::wireBytes()));
    EXPECT_EQ(prog.totalBytes(),
              2 * (4 + MemAUop::wireBytes()) + 4 + DdrUop::wireBytes());
}

TEST(Program, ExpandedUopBytesAccountReuseAndMask)
{
    RsnProgram prog;
    RsnPacket p = samplePacket();  // mask 0x5 (2 FUs), reuse 12, 1 mop
    prog.append(p);
    EXPECT_EQ(prog.expandedUopBytes(FuType::MemA),
              12u * 2u * MemAUop::wireBytes());
}

TEST(Program, UopCountForSelectsInstance)
{
    RsnProgram prog;
    RsnPacket p = samplePacket();  // mask 0x5: instances 0 and 2
    prog.append(p);
    EXPECT_EQ(prog.uopCountFor({FuType::MemA, 0}), 12u);
    EXPECT_EQ(prog.uopCountFor({FuType::MemA, 1}), 0u);
    EXPECT_EQ(prog.uopCountFor({FuType::MemA, 2}), 12u);
}

TEST(Program, HaltsTargetEveryConfiguredInstance)
{
    RsnProgram prog;
    std::array<int, kNumFuTypes> counts{};
    counts[static_cast<int>(FuType::Mme)] = 6;
    counts[static_cast<int>(FuType::Ddr)] = 1;
    prog.appendHalts(counts);
    ASSERT_EQ(prog.size(), 2u);
    EXPECT_TRUE(prog.packets()[0].last);
    EXPECT_EQ(prog.packets()[0].mask, 0x3f);
    EXPECT_EQ(prog.uopCountFor({FuType::Mme, 5}), 1u);  // the halt
}

TEST(Assembler, RoundTripsEveryUopKind)
{
    RsnProgram prog;

    RsnPacket mme;
    mme.opcode = FuType::Mme;
    mme.mask = 0x3f;
    mme.reuse = 3;
    MmeUop m;
    m.reps = 4;
    m.k_steps = 8;
    m.tile_m = 768;
    m.tile_k = 128;
    m.tile_n = 1024;
    m.add_bias = true;
    mme.mops.emplace_back(m);
    prog.append(mme);

    RsnPacket mesh;
    mesh.opcode = FuType::MeshA;
    mesh.mask = 1;
    MeshUop mu;
    mu.repeats = 96;
    mu.mode = MeshMode::Parallel;
    mu.routes.push_back({{FuType::MemA, 0}, {FuType::Mme, 0}});
    mu.routes.push_back({{FuType::MemC, 1}, {FuType::Mme, 4}});
    mesh.mops.emplace_back(mu);
    prog.append(mesh);

    RsnPacket ddr;
    ddr.opcode = FuType::Ddr;
    ddr.mask = 1;
    DdrUop d;
    d.addr = 0xABCD00;
    d.stride_count = 8;
    d.stride_offset = 512;
    d.load = true;
    d.dest = {FuType::MemA, 0};
    d.rows = 768;
    d.cols = 128;
    d.pitch = 1024;
    ddr.mops.emplace_back(d);
    prog.append(ddr);

    RsnPacket lp;
    lp.opcode = FuType::Lpddr;
    lp.mask = 1;
    LpddrUop l;
    l.addr = 0x5000;
    l.dest = {FuType::MemB, 2};
    l.load_bias = true;
    l.rows = 2;
    l.cols = 1024;
    l.pitch = 1024;
    lp.mops.emplace_back(l);
    prog.append(lp);

    RsnPacket mb;
    mb.opcode = FuType::MemB;
    mb.mask = 0x7;
    MemBUop b;
    b.rows = 128;
    b.cols = 1024;
    b.src = {FuType::Lpddr, 0};
    b.load = true;
    b.send = true;
    b.transpose = true;
    mb.mops.emplace_back(b);
    prog.append(mb);

    RsnPacket mc;
    mc.opcode = FuType::MemC;
    mc.mask = 0x3f;
    MemCUop c;
    c.rows = 128;
    c.cols = 1024;
    c.recv_chunks = 1;
    c.send_chunks = 2;
    c.recv = true;
    c.store = true;
    c.softmax = true;
    c.scale_shift = true;
    mc.mops.emplace_back(c);
    prog.append(mc);

    auto bytes = assemble(prog);
    EXPECT_EQ(bytes.size(), prog.totalBytes());
    RsnProgram back = disassemble(bytes);
    ASSERT_EQ(back.size(), prog.size());
    for (std::size_t i = 0; i < prog.size(); ++i) {
        EXPECT_EQ(back.packets()[i].opcode, prog.packets()[i].opcode);
        EXPECT_EQ(back.packets()[i].mask, prog.packets()[i].mask);
        EXPECT_EQ(back.packets()[i].reuse, prog.packets()[i].reuse);
        ASSERT_EQ(back.packets()[i].mops.size(),
                  prog.packets()[i].mops.size());
        for (std::size_t j = 0; j < prog.packets()[i].mops.size(); ++j)
            EXPECT_EQ(back.packets()[i].mops[j],
                      prog.packets()[i].mops[j])
                << "packet " << i << " mop " << j;
    }
}

TEST(Uop, WireBytesMatchSerializer)
{
    // Serialize one of each and compare against the declared size.
    auto sizeOf = [](Uop u, FuType t) {
        RsnProgram p;
        RsnPacket pkt;
        pkt.opcode = t;
        pkt.mask = 1;
        pkt.mops.push_back(std::move(u));
        p.append(pkt);
        return assemble(p).size() - 4;
    };
    EXPECT_EQ(sizeOf(MmeUop{}, FuType::Mme), MmeUop::wireBytes());
    EXPECT_EQ(sizeOf(DdrUop{}, FuType::Ddr), DdrUop::wireBytes());
    EXPECT_EQ(sizeOf(LpddrUop{}, FuType::Lpddr), LpddrUop::wireBytes());
    EXPECT_EQ(sizeOf(MemAUop{}, FuType::MemA), MemAUop::wireBytes());
    EXPECT_EQ(sizeOf(MemBUop{}, FuType::MemB), MemBUop::wireBytes());
    EXPECT_EQ(sizeOf(MemCUop{}, FuType::MemC), MemCUop::wireBytes());
    MeshUop mu;
    mu.routes.resize(6);
    EXPECT_EQ(sizeOf(mu, FuType::MeshA), mu.wireBytes());
}

TEST(Uop, ToStringIsNonEmptyForAllKinds)
{
    EXPECT_FALSE(uopToString(Uop{MmeUop{}}).empty());
    EXPECT_FALSE(uopToString(Uop{DdrUop{}}).empty());
    EXPECT_FALSE(uopToString(Uop{LpddrUop{}}).empty());
    MeshUop mu;
    mu.routes.push_back({{FuType::MemA, 0}, {FuType::Mme, 0}});
    EXPECT_NE(uopToString(Uop{mu}).find("MemA0->MME0"),
              std::string::npos);
    EXPECT_FALSE(uopToString(Uop{MemAUop{}}).empty());
    EXPECT_FALSE(uopToString(Uop{MemBUop{}}).empty());
    EXPECT_FALSE(uopToString(Uop{MemCUop{}}).empty());
    EXPECT_EQ(uopToString(Uop{HaltUop{}}), "halt");
}

TEST(Uop, MatchesFuType)
{
    EXPECT_TRUE(uopMatchesFuType(Uop{MmeUop{}}, FuType::Mme));
    EXPECT_FALSE(uopMatchesFuType(Uop{MmeUop{}}, FuType::MemA));
    EXPECT_TRUE(uopMatchesFuType(Uop{MeshUop{}}, FuType::MeshA));
    EXPECT_TRUE(uopMatchesFuType(Uop{MeshUop{}}, FuType::MeshB));
    EXPECT_FALSE(uopMatchesFuType(Uop{MeshUop{}}, FuType::Ddr));
    for (int t = 0; t < kNumFuTypes; ++t)
        EXPECT_TRUE(uopMatchesFuType(Uop{HaltUop{}},
                                     static_cast<FuType>(t)));
}

} // namespace
