#!/usr/bin/env bash
# Run the sim-kernel microbenchmarks plus the end-to-end functional
# benchmarks and emit a merged BENCH_sim.json summary for the
# performance trajectory across PRs.
#
# Usage: tools/bench_json.sh [build-dir] [out-json]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
OUT="${2:-BENCH_sim.json}"

for bin in bench_micro_sim bench_functional bench_serving; do
    if [[ ! -x "$BUILD/$bin" ]]; then
        echo "error: $BUILD/$bin not built (run tools/smoke.sh first)" >&2
        exit 1
    fi
done

RAW_MICRO="$(mktemp)"
RAW_FUNC="$(mktemp)"
RAW_SERVE="$(mktemp)"
trap 'rm -f "$RAW_MICRO" "$RAW_FUNC" "$RAW_SERVE"' EXIT
"$BUILD/bench_micro_sim" --benchmark_format=json --benchmark_min_time=0.5 \
    >"$RAW_MICRO" 2>/dev/null
"$BUILD/bench_functional" --benchmark_format=json --benchmark_min_time=0.5 \
    >"$RAW_FUNC" 2>/dev/null
"$BUILD/bench_serving" --benchmark_format=json --benchmark_min_time=0.5 \
    >"$RAW_SERVE" 2>/dev/null

python3 - "$RAW_MICRO" "$RAW_FUNC" "$RAW_SERVE" "$OUT" <<'EOF'
import json
import sys

raws = [json.load(open(p)) for p in sys.argv[1:-1]]
ctx = raws[0].get("context", {})
out = {
    "context": {
        "date": ctx.get("date"),
        "num_cpus": ctx.get("num_cpus"),
        "mhz_per_cpu": ctx.get("mhz_per_cpu"),
        "build_type": ctx.get("library_build_type"),
    },
    "events_per_second": {},
}
for raw in raws:
    for b in raw["benchmarks"]:
        entry = {"items_per_second": b.get("items_per_second"),
                 "cpu_time_ns": b.get("cpu_time")}
        if b.get("time_unit") == "ms":
            entry["cpu_time_ns"] = b.get("cpu_time", 0) * 1e6
        # The benchmark's SetLabel is a space-separated token list. A
        # bare token is the runtime-selected ISA table ("avx512",
        # "scalar", ...) so the snapshot records which kernels produced
        # each series; the sweep-executor series (BM_SweepThroughput)
        # label their lane count as "jobs=N", the serving series their
        # offered load as "load=N" (both recorded as integers so the
        # scaling and goodput/latency curves are machine-readable), and
        # the typed-datapath series (ISSUE 10) carry their precision
        # policy as "dtype=bf16" alongside the ISA token.
        label = b.get("label")
        if label:
            for tok in label.split():
                if tok.startswith("jobs="):
                    entry["jobs"] = int(tok[len("jobs="):])
                elif tok.startswith("load="):
                    entry["offered_load"] = int(tok[len("load="):])
                elif tok.startswith("dtype="):
                    entry["dtype"] = tok[len("dtype="):]
                else:
                    entry["isa"] = tok
        for counter in ("allocs_per_event", "allocs_per_chunk",
                        "allocs_per_tile", "p99_ticks", "p50_ticks",
                        "goodput_rps", "ticks"):
            if counter in b:
                entry[counter] = b[counter]
        out["events_per_second"][b["name"]] = entry
json.dump(out, open(sys.argv[-1], "w"), indent=2)
print(f"wrote {sys.argv[-1]}")
EOF
