#!/usr/bin/env bash
# Run the sim-kernel microbenchmarks and emit a BENCH_sim.json events/sec
# summary for the performance trajectory across PRs.
#
# Usage: tools/bench_json.sh [build-dir] [out-json]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
OUT="${2:-BENCH_sim.json}"

if [[ ! -x "$BUILD/bench_micro_sim" ]]; then
    echo "error: $BUILD/bench_micro_sim not built (run tools/smoke.sh first)" >&2
    exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
"$BUILD/bench_micro_sim" --benchmark_format=json --benchmark_min_time=0.5 \
    >"$RAW" 2>/dev/null

python3 - "$RAW" "$OUT" <<'EOF'
import json
import sys

raw = json.load(open(sys.argv[1]))
ctx = raw.get("context", {})
out = {
    "context": {
        "date": ctx.get("date"),
        "num_cpus": ctx.get("num_cpus"),
        "mhz_per_cpu": ctx.get("mhz_per_cpu"),
        "build_type": ctx.get("library_build_type"),
    },
    "events_per_second": {},
}
for b in raw["benchmarks"]:
    entry = {"items_per_second": b.get("items_per_second"),
             "cpu_time_ns": b.get("cpu_time")}
    for counter in ("allocs_per_event", "allocs_per_chunk",
                    "allocs_per_tile"):
        if counter in b:
            entry[counter] = b[counter]
    out["events_per_second"][b["name"]] = entry
json.dump(out, open(sys.argv[2], "w"), indent=2)
print(f"wrote {sys.argv[2]}")
EOF
