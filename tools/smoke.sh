#!/usr/bin/env bash
# One-command tier-1 gate: configure, build, run the full test suite, and
# smoke-run the sim microbenchmarks. Exits nonzero on any failure.
#
# Usage: tools/smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
JOBS="$(nproc)"

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

# Benchmarks must at least run (one fast rep; timing is bench_json.sh's job).
"$BUILD/bench_micro_sim" --benchmark_min_time=0 \
    --benchmark_filter='BM_EngineEventDispatch/1000$|BM_ChannelPingPong/1000$|BM_CoroResumeDispatch/1000$' \
    >/dev/null 2>&1

# Chaos smoke (docs/robustness.md): two seeded fault schedules on the
# tiny functional model. Each run must terminate with a structured
# outcome — clean completion (0) or diagnosed fault (4), never a hang or
# a crash — and repeating the seed must reproduce the output verbatim.
for seed in 1 2; do
    for rep in a b; do
        rc=0
        "$BUILD/rsn-sim" --model tiny --functional --fault-seed "$seed" \
            >"$BUILD/chaos_${seed}_${rep}.out" 2>&1 || rc=$?
        if [ "$rc" -ne 0 ] && [ "$rc" -ne 4 ]; then
            echo "smoke: chaos seed $seed exited $rc (want 0 or 4)" >&2
            cat "$BUILD/chaos_${seed}_${rep}.out" >&2
            exit 1
        fi
    done
    if ! cmp -s "$BUILD/chaos_${seed}_a.out" "$BUILD/chaos_${seed}_b.out"; then
        echo "smoke: chaos seed $seed is not reproducible" >&2
        diff "$BUILD/chaos_${seed}_a.out" "$BUILD/chaos_${seed}_b.out" >&2
        exit 1
    fi
done

# Chaos-serving smoke (docs/robustness.md, "Serving under faults"): the
# fault-tolerant serving scheduler over two chaos seeds and three
# offered-load points. The printed reports are the determinism artifact:
# stdout must be byte-identical between --jobs 1 and --jobs 4 (load
# points merely move between worker lanes), and the run must drain —
# every request ok/retried/shed/timeout/faulted, never a hang (exit 0).
for seed in 1 2; do
    for jobs in 1 4; do
        if ! "$BUILD/rsn-serve" --load 10000,20000,40000 --requests 48 \
            --fault-seed "$seed" --seed "$seed" --deadline 2000000 \
            --jobs "$jobs" >"$BUILD/serve_${seed}_j${jobs}.out" 2>/dev/null
        then
            echo "smoke: chaos serving seed $seed jobs=$jobs failed" >&2
            cat "$BUILD/serve_${seed}_j${jobs}.out" >&2
            exit 1
        fi
    done
    if ! cmp -s "$BUILD/serve_${seed}_j1.out" "$BUILD/serve_${seed}_j4.out"; then
        echo "smoke: chaos serving seed $seed differs across --jobs" >&2
        diff "$BUILD/serve_${seed}_j1.out" "$BUILD/serve_${seed}_j4.out" >&2
        exit 1
    fi
done

echo "smoke: OK"
