#!/usr/bin/env bash
# One-command tier-1 gate: configure, build, run the full test suite, and
# smoke-run the sim microbenchmarks. Exits nonzero on any failure.
#
# Usage: tools/smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
JOBS="$(nproc)"

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

# Benchmarks must at least run (one fast rep; timing is bench_json.sh's job).
"$BUILD/bench_micro_sim" --benchmark_min_time=0 \
    --benchmark_filter='BM_EngineEventDispatch/1000$|BM_ChannelPingPong/1000$|BM_CoroResumeDispatch/1000$' \
    >/dev/null 2>&1

echo "smoke: OK"
