/**
 * @file
 * rsn-sim: command-line driver for the RSN simulator.
 *
 * Usage:
 *   rsn-sim [options]
 *     --model bert|vit|ncf|mlp|tiny   workload (default bert)
 *     --batch N                       batch size (default 6)
 *     --seq N                         sequence length (default 512)
 *     --layers N                      encoder layers (default 1)
 *     --schedule opt|bw|noopt         optimization level (default opt)
 *     --no-fuse-qkv                   keep Q/K/V as separate GEMMs
 *     --bw-scale F                    scale both DRAM channels by F
 *     --functional                    carry FP32 data and self-check
 *     --isa NAME                      payload kernel table: avx512,
 *                                     avx2, neon, portable, or scalar
 *                                     (the exact reference); default is
 *                                     the best this CPU supports, or
 *                                     $RSN_ISA. Affects payload math
 *                                     only, never tick counts.
 *     --trace FILE                    write a Chrome trace JSON
 *     --plan                          print the segmentation plan
 *     --dot                           print the datapath as Graphviz DOT
 *     --instr                         print instruction statistics
 *     --fault-spec SPEC               arm fault injection; SPEC is
 *                                     "key=value,..." (sim/fault.hh) or
 *                                     the preset name "chaos"
 *     --fault-seed N                  seed for the fault schedule
 *     --sweep-batch LIST              sweep mode: run the model once per
 *                                     batch size in the comma-separated
 *                                     LIST (e.g. 1,2,3,6,12,24) and
 *                                     print one summary row per point
 *     --jobs N                        worker lanes for --sweep-batch
 *                                     (default 1; 0 = all hardware
 *                                     threads). Results are bit-
 *                                     identical for every N.
 *
 * Exit codes:
 *   0  run completed (outputs verified when --functional)
 *   1  run completed but outputs mismatched the FP32 reference
 *   2  usage error (unknown flag / model / schedule / --isa name)
 *   3  invalid configuration (bad machine config or fault spec)
 *   4  run diagnosed: injected hard fault, deadlock, livelock, timeout
 *
 * Examples:
 *   rsn-sim --model bert --batch 6 --seq 512
 *   rsn-sim --model bert --schedule noopt --instr
 *   rsn-sim --model tiny --functional
 *   rsn-sim --model tiny --functional --fault-spec chaos --fault-seed 7
 *   rsn-sim --model bert --trace /tmp/rsn.json
 *   rsn-sim --model bert --sweep-batch 1,2,3,6,12,24 --jobs 8
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include <vector>

#include "core/machine.hh"
#include "core/power.hh"
#include "fu/kernel_registry.hh"
#include "core/tracer.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/runner.hh"
#include "lib/segmenter.hh"
#include "lib/sweep.hh"
#include "ref/ref_math.hh"

namespace {

struct Options {
    std::string model = "bert";
    std::uint32_t batch = 6;
    std::uint32_t seq = 512;
    std::uint32_t layers = 1;
    std::string schedule = "opt";
    bool fuse_qkv = true;
    double bw_scale = 1.0;
    bool functional = false;
    std::string isa;
    std::string trace_path;
    bool print_plan = false;
    bool print_dot = false;
    bool print_instr = false;
    std::string fault_spec;
    std::uint64_t fault_seed = 0;
    bool fault_seed_set = false;
    std::string sweep_batch;
    long jobs = 1;
};

void
usage()
{
    std::fprintf(stderr, "see the header of tools/rsn_sim.cc for usage\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (a == "--model")
            o.model = next();
        else if (a == "--batch")
            o.batch = std::atoi(next().c_str());
        else if (a == "--seq")
            o.seq = std::atoi(next().c_str());
        else if (a == "--layers")
            o.layers = std::atoi(next().c_str());
        else if (a == "--schedule")
            o.schedule = next();
        else if (a == "--no-fuse-qkv")
            o.fuse_qkv = false;
        else if (a == "--bw-scale")
            o.bw_scale = std::atof(next().c_str());
        else if (a == "--functional")
            o.functional = true;
        else if (a == "--isa")
            o.isa = next();
        else if (a == "--trace")
            o.trace_path = next();
        else if (a == "--plan")
            o.print_plan = true;
        else if (a == "--dot")
            o.print_dot = true;
        else if (a == "--instr")
            o.print_instr = true;
        else if (a == "--fault-spec")
            o.fault_spec = next();
        else if (a == "--fault-seed") {
            o.fault_seed = std::strtoull(next().c_str(), nullptr, 10);
            o.fault_seed_set = true;
        } else if (a == "--sweep-batch")
            o.sweep_batch = next();
        else if (a == "--jobs")
            o.jobs = std::strtol(next().c_str(), nullptr, 10);
        else
            usage();
    }
    return o;
}

int runMain(const Options &o);

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    try {
        return runMain(o);
    } catch (const std::runtime_error &e) {
        // rsn_fatal: a user/config error the driver can classify.
        std::fprintf(stderr, "%s\n", e.what());
        return 3;
    }
}

namespace {

int
runMain(const Options &o)
{
    using namespace rsn;

    if (!o.isa.empty()) {
        // Strict, unlike the RSN_ISA env fallback: an artifact told to
        // run a specific kernel table must not silently run another.
        Status st = kernel::Registry::instance().select(o.isa, "cli:--isa");
        if (!st.ok()) {
            std::fprintf(stderr, "--isa %s: %s\n", o.isa.c_str(),
                         st.toString().c_str());
            return 2;
        }
    }

    const auto makeModel = [&](std::uint32_t batch) {
        lib::Model m;
        if (o.model == "bert")
            m = lib::bertLargeEncoder(batch, o.seq, o.fuse_qkv, o.layers);
        else if (o.model == "vit")
            m = lib::vitEncoder(batch, o.fuse_qkv, o.layers);
        else if (o.model == "ncf")
            m = lib::ncf(batch);
        else if (o.model == "mlp")
            m = lib::mlp(batch);
        else if (o.model == "tiny")
            m = lib::tinyEncoder(batch, 32, 64, 4, 128, o.fuse_qkv);
        else
            usage();
        return m;
    };
    lib::Model model = makeModel(o.batch);

    lib::ScheduleOptions sched;
    if (o.schedule == "opt")
        sched = lib::ScheduleOptions::optimized();
    else if (o.schedule == "bw")
        sched = lib::ScheduleOptions::bwOptimized();
    else if (o.schedule == "noopt")
        sched = lib::ScheduleOptions::noOptimize();
    else
        usage();

    auto cfg = core::MachineConfig::vck190(o.functional);
    if (o.bw_scale != 1.0) {
        cfg.ddr.read_gbps *= o.bw_scale;
        cfg.ddr.write_gbps *= o.bw_scale;
        cfg.lpddr.read_gbps *= o.bw_scale;
        cfg.lpddr.write_gbps *= o.bw_scale;
    }
    if (!o.fault_spec.empty()) {
        Status st;
        cfg.fault = sim::FaultSpec::parse(o.fault_spec, &st);
        if (!st.ok()) {
            std::fprintf(stderr, "%s\n", st.toString().c_str());
            return 3;
        }
    }
    if (o.fault_seed_set) {
        // A bare --fault-seed arms the chaos preset; with --fault-spec it
        // just overrides the spec's seed.
        if (o.fault_spec.empty())
            cfg.fault = sim::FaultSpec::chaosPreset(o.fault_seed);
        else
            cfg.fault.seed = o.fault_seed;
    }
    if (Status st = cfg.validate(); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 3;
    }

    if (!o.sweep_batch.empty()) {
        // Sweep mode: one point per batch size, spread across --jobs
        // worker lanes. Every point is a full checked run (functional
        // verification included when --functional); outcomes and tick
        // counts are independent of the jobs value.
        std::vector<lib::SweepPoint> points;
        std::vector<std::uint32_t> batches;
        std::size_t pos = 0;
        while (pos < o.sweep_batch.size()) {
            std::size_t comma = o.sweep_batch.find(',', pos);
            if (comma == std::string::npos)
                comma = o.sweep_batch.size();
            const int batch =
                std::atoi(o.sweep_batch.substr(pos, comma - pos).c_str());
            if (batch <= 0)
                usage();
            batches.push_back(batch);
            points.push_back({cfg, makeModel(batch), sched, 2025});
            pos = comma + 1;
        }
        const lib::SweepExecutor executor(
            lib::SweepExecutor::resolveJobs(o.jobs));
        const auto runs = lib::runSweep(executor, points);

        std::printf("%s sweep, %s schedule, %u lanes\n", o.model.c_str(),
                    o.schedule.c_str(), executor.jobs());
        std::printf("  %8s %14s %12s %10s  %s\n", "batch", "ticks", "ms",
                    "tasks/s", "status");
        int rc = 0;
        for (std::size_t i = 0; i < runs.size(); ++i) {
            const auto &c = runs[i];
            const auto &r = c.report.result;
            const std::uint32_t batch = batches[i];
            if (!c.report.ok())
                rc = 4;
            else if (!c.outputs_ok)
                rc = rc ? rc : 1;
            std::printf("  %8u %14llu %12.3f %10.1f  %s\n", batch,
                        (unsigned long long)r.ticks, r.ms,
                        r.ms > 0 ? batch / (r.ms / 1e3) : 0.0,
                        !c.report.ok()
                            ? c.report.status.toString().c_str()
                            : (c.outputs_ok ? "ok" : "MISMATCH"));
        }
        return rc;
    }

    core::RsnMachine mach(cfg);

    if (o.print_plan) {
        lib::Segmenter seg(lib::PlatformBudget{});
        std::printf("%s\n", seg.plan(model).toString().c_str());
    }
    if (o.print_dot)
        std::printf("%s\n", mach.topology().toDot().c_str());

    auto compiled = lib::compileModel(mach, model, sched);
    if (o.print_instr) {
        std::printf("instructions: %zu packets, %llu bytes (uOPs: ",
                    compiled.program.size(),
                    (unsigned long long)compiled.program.totalBytes());
        Bytes uop_bytes = 0;
        for (int t = 0; t < kNumFuTypes; ++t)
            uop_bytes += compiled.program.expandedUopBytes(
                static_cast<FuType>(t));
        std::printf("%llu bytes, %.1fx compression)\n",
                    (unsigned long long)uop_bytes,
                    double(uop_bytes) / compiled.program.totalBytes());
    }

    std::unique_ptr<core::Tracer> tracer;
    if (!o.trace_path.empty())
        tracer = std::make_unique<core::Tracer>(mach);

    auto checked = lib::runModelChecked(mach, model, compiled, 2025);
    const auto &r = checked.report.result;
    if (!checked.report.ok()) {
        std::printf("RUN DID NOT COMPLETE\n%s\n",
                    checked.report.toString().c_str());
        return 4;
    }

    std::printf("%s: %u x %u, %s schedule\n", model.name.c_str(),
                o.batch, o.seq, o.schedule.c_str());
    std::printf("  latency   : %.3f ms (%llu ticks @ 260 MHz)\n", r.ms,
                (unsigned long long)r.ticks);
    std::printf("  kernels   : %s via %s (probe: %s)\n",
                checked.report.isa.c_str(),
                checked.report.isa_source.c_str(),
                checked.report.isa_probe.c_str());
    std::printf("  compute   : %.2f achieved TFLOPS (peak %.2f)\n",
                mach.achievedTflops(r), mach.peakTflops());
    std::printf("  DDR       : %.1f MB read, %.1f MB written (%.0f%% "
                "busy)\n",
                mach.ddrChannel().bytesRead() / 1e6,
                mach.ddrChannel().bytesWritten() / 1e6,
                100 * mach.ddrChannel().utilization(r.ticks));
    std::printf("  LPDDR     : %.1f MB read (%.0f%% busy)\n",
                mach.lpddrChannel().bytesRead() / 1e6,
                100 * mach.lpddrChannel().utilization(r.ticks));
    core::PowerModel power;
    std::printf("  power     : %.1f W operating / %.1f W dynamic\n",
                power.operatingWatts(mach, r),
                power.dynamicWatts(mach, r));

    if (mach.faultInjector()) {
        std::printf("  faults    : %llu injected and recovered (spec %s)\n",
                    (unsigned long long)checked.report.faults_injected,
                    cfg.fault.toString().c_str());
    }
    if (o.functional) {
        std::printf("  functional: %s\n",
                    checked.outputs_ok
                        ? "all tensors match the FP32 reference"
                        : "MISMATCH");
        if (!checked.outputs_ok) {
            for (const auto &name : checked.mismatched)
                std::printf("    diverged: %s\n", name.c_str());
            return 1;
        }
    }
    if (tracer) {
        if (tracer->writeChromeJson(o.trace_path))
            std::printf("  trace     : %s (%zu slices; open in "
                        "chrome://tracing)\n",
                        o.trace_path.c_str(), tracer->slices().size());
        else
            std::printf("  trace     : FAILED to write %s\n",
                        o.trace_path.c_str());
    }
    return 0;
}

} // namespace
