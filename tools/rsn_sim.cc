/**
 * @file
 * rsn-sim: command-line driver for the RSN simulator.
 *
 * Usage:
 *   rsn-sim [options]
 *     --model bert|vit|ncf|mlp|tiny   workload (default bert)
 *     --batch N                       batch size (default 6)
 *     --seq N                         sequence length (default 512)
 *     --layers N                      encoder layers (default 1)
 *     --schedule opt|bw|noopt         optimization level (default opt)
 *     --no-fuse-qkv                   keep Q/K/V as separate GEMMs
 *     --bw-scale F                    scale both DRAM channels by F
 *     --functional                    carry FP32 data and self-check
 *     --trace FILE                    write a Chrome trace JSON
 *     --plan                          print the segmentation plan
 *     --dot                           print the datapath as Graphviz DOT
 *     --instr                         print instruction statistics
 *
 * Examples:
 *   rsn-sim --model bert --batch 6 --seq 512
 *   rsn-sim --model bert --schedule noopt --instr
 *   rsn-sim --model tiny --functional
 *   rsn-sim --model bert --trace /tmp/rsn.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/machine.hh"
#include "core/power.hh"
#include "core/tracer.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/runner.hh"
#include "lib/segmenter.hh"
#include "ref/ref_math.hh"

namespace {

struct Options {
    std::string model = "bert";
    std::uint32_t batch = 6;
    std::uint32_t seq = 512;
    std::uint32_t layers = 1;
    std::string schedule = "opt";
    bool fuse_qkv = true;
    double bw_scale = 1.0;
    bool functional = false;
    std::string trace_path;
    bool print_plan = false;
    bool print_dot = false;
    bool print_instr = false;
};

void
usage()
{
    std::fprintf(stderr, "see the header of tools/rsn_sim.cc for usage\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (a == "--model")
            o.model = next();
        else if (a == "--batch")
            o.batch = std::atoi(next().c_str());
        else if (a == "--seq")
            o.seq = std::atoi(next().c_str());
        else if (a == "--layers")
            o.layers = std::atoi(next().c_str());
        else if (a == "--schedule")
            o.schedule = next();
        else if (a == "--no-fuse-qkv")
            o.fuse_qkv = false;
        else if (a == "--bw-scale")
            o.bw_scale = std::atof(next().c_str());
        else if (a == "--functional")
            o.functional = true;
        else if (a == "--trace")
            o.trace_path = next();
        else if (a == "--plan")
            o.print_plan = true;
        else if (a == "--dot")
            o.print_dot = true;
        else if (a == "--instr")
            o.print_instr = true;
        else
            usage();
    }
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rsn;
    Options o = parse(argc, argv);

    lib::Model model;
    if (o.model == "bert")
        model = lib::bertLargeEncoder(o.batch, o.seq, o.fuse_qkv,
                                      o.layers);
    else if (o.model == "vit")
        model = lib::vitEncoder(o.batch, o.fuse_qkv, o.layers);
    else if (o.model == "ncf")
        model = lib::ncf(o.batch);
    else if (o.model == "mlp")
        model = lib::mlp(o.batch);
    else if (o.model == "tiny")
        model = lib::tinyEncoder(o.batch, 32, 64, 4, 128, o.fuse_qkv);
    else
        usage();

    lib::ScheduleOptions sched;
    if (o.schedule == "opt")
        sched = lib::ScheduleOptions::optimized();
    else if (o.schedule == "bw")
        sched = lib::ScheduleOptions::bwOptimized();
    else if (o.schedule == "noopt")
        sched = lib::ScheduleOptions::noOptimize();
    else
        usage();

    auto cfg = core::MachineConfig::vck190(o.functional);
    if (o.bw_scale != 1.0) {
        cfg.ddr.read_gbps *= o.bw_scale;
        cfg.ddr.write_gbps *= o.bw_scale;
        cfg.lpddr.read_gbps *= o.bw_scale;
        cfg.lpddr.write_gbps *= o.bw_scale;
    }
    core::RsnMachine mach(cfg);

    if (o.print_plan) {
        lib::Segmenter seg(lib::PlatformBudget{});
        std::printf("%s\n", seg.plan(model).toString().c_str());
    }
    if (o.print_dot)
        std::printf("%s\n", mach.topology().toDot().c_str());

    auto compiled = lib::compileModel(mach, model, sched);
    if (o.print_instr) {
        std::printf("instructions: %zu packets, %llu bytes (uOPs: ",
                    compiled.program.size(),
                    (unsigned long long)compiled.program.totalBytes());
        Bytes uop_bytes = 0;
        for (int t = 0; t < kNumFuTypes; ++t)
            uop_bytes += compiled.program.expandedUopBytes(
                static_cast<FuType>(t));
        std::printf("%llu bytes, %.1fx compression)\n",
                    (unsigned long long)uop_bytes,
                    double(uop_bytes) / compiled.program.totalBytes());
    }

    if (o.functional)
        lib::initTensors(mach, compiled, 2025);
    std::unique_ptr<core::Tracer> tracer;
    if (!o.trace_path.empty())
        tracer = std::make_unique<core::Tracer>(mach);

    auto refs = o.functional
                    ? lib::referenceForward(mach, model, compiled)
                    : std::map<std::string, ref::Matrix>{};

    auto r = mach.run(compiled.program);
    if (!r.completed) {
        std::printf("RUN DID NOT COMPLETE (%s)\n%s\n",
                    r.deadlocked ? "deadlock" : "timeout",
                    r.diagnosis.c_str());
        return 1;
    }

    std::printf("%s: %u x %u, %s schedule\n", model.name.c_str(),
                o.batch, o.seq, o.schedule.c_str());
    std::printf("  latency   : %.3f ms (%llu ticks @ 260 MHz)\n", r.ms,
                (unsigned long long)r.ticks);
    std::printf("  compute   : %.2f achieved TFLOPS (peak %.2f)\n",
                mach.achievedTflops(r), mach.peakTflops());
    std::printf("  DDR       : %.1f MB read, %.1f MB written (%.0f%% "
                "busy)\n",
                mach.ddrChannel().bytesRead() / 1e6,
                mach.ddrChannel().bytesWritten() / 1e6,
                100 * mach.ddrChannel().utilization(r.ticks));
    std::printf("  LPDDR     : %.1f MB read (%.0f%% busy)\n",
                mach.lpddrChannel().bytesRead() / 1e6,
                100 * mach.lpddrChannel().utilization(r.ticks));
    core::PowerModel power;
    std::printf("  power     : %.1f W operating / %.1f W dynamic\n",
                power.operatingWatts(mach, r),
                power.dynamicWatts(mach, r));

    if (o.functional) {
        bool all_ok = true;
        for (const auto &[name, expect] : refs) {
            if (name == "input" || !compiled.hasTensor(name))
                continue;
            auto got = lib::readTensor(mach, compiled, name);
            all_ok &= ref::allclose(got, expect, 2e-3f, 2e-3f);
        }
        std::printf("  functional: %s\n",
                    all_ok ? "all tensors match the FP32 reference"
                           : "MISMATCH");
        if (!all_ok)
            return 1;
    }
    if (tracer) {
        if (tracer->writeChromeJson(o.trace_path))
            std::printf("  trace     : %s (%zu slices; open in "
                        "chrome://tracing)\n",
                        o.trace_path.c_str(), tracer->slices().size());
        else
            std::printf("  trace     : FAILED to write %s\n",
                        o.trace_path.c_str());
    }
    return 0;
}
