/**
 * @file
 * rsn-sim: command-line driver for the RSN simulator.
 *
 * Usage:
 *   rsn-sim [options]
 *     --model bert|vit|ncf|mlp|tiny   workload (default bert)
 *     --batch N                       batch size (default 6)
 *     --seq N                         sequence length (default 512)
 *     --layers N                      encoder layers (default 1)
 *     --schedule opt|bw|noopt         optimization level (default opt)
 *     --no-fuse-qkv                   keep Q/K/V as separate GEMMs
 *     --bw-scale F                    scale both DRAM channels by F
 *     --functional                    carry FP32 data and self-check
 *     --isa NAME                      payload kernel table: avx512,
 *                                     avx2, neon, portable, or scalar
 *                                     (the exact reference); default is
 *                                     the best this CPU supports, or
 *                                     $RSN_ISA. Affects payload math
 *                                     only, never tick counts.
 *     --trace FILE                    write a Chrome trace JSON
 *     --plan                          print the segmentation plan
 *     --dot                           print the datapath as Graphviz DOT
 *     --instr                         print instruction statistics
 *     --fault-spec SPEC               arm fault injection; SPEC is
 *                                     "key=value,..." (sim/fault.hh) or
 *                                     the preset name "chaos"
 *     --fault-seed N                  seed for the fault schedule
 *
 * Exit codes:
 *   0  run completed (outputs verified when --functional)
 *   1  run completed but outputs mismatched the FP32 reference
 *   2  usage error (unknown flag / model / schedule / --isa name)
 *   3  invalid configuration (bad machine config or fault spec)
 *   4  run diagnosed: injected hard fault, deadlock, livelock, timeout
 *
 * Examples:
 *   rsn-sim --model bert --batch 6 --seq 512
 *   rsn-sim --model bert --schedule noopt --instr
 *   rsn-sim --model tiny --functional
 *   rsn-sim --model tiny --functional --fault-spec chaos --fault-seed 7
 *   rsn-sim --model bert --trace /tmp/rsn.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/machine.hh"
#include "core/power.hh"
#include "fu/kernel_registry.hh"
#include "core/tracer.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/runner.hh"
#include "lib/segmenter.hh"
#include "ref/ref_math.hh"

namespace {

struct Options {
    std::string model = "bert";
    std::uint32_t batch = 6;
    std::uint32_t seq = 512;
    std::uint32_t layers = 1;
    std::string schedule = "opt";
    bool fuse_qkv = true;
    double bw_scale = 1.0;
    bool functional = false;
    std::string isa;
    std::string trace_path;
    bool print_plan = false;
    bool print_dot = false;
    bool print_instr = false;
    std::string fault_spec;
    std::uint64_t fault_seed = 0;
    bool fault_seed_set = false;
};

void
usage()
{
    std::fprintf(stderr, "see the header of tools/rsn_sim.cc for usage\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (a == "--model")
            o.model = next();
        else if (a == "--batch")
            o.batch = std::atoi(next().c_str());
        else if (a == "--seq")
            o.seq = std::atoi(next().c_str());
        else if (a == "--layers")
            o.layers = std::atoi(next().c_str());
        else if (a == "--schedule")
            o.schedule = next();
        else if (a == "--no-fuse-qkv")
            o.fuse_qkv = false;
        else if (a == "--bw-scale")
            o.bw_scale = std::atof(next().c_str());
        else if (a == "--functional")
            o.functional = true;
        else if (a == "--isa")
            o.isa = next();
        else if (a == "--trace")
            o.trace_path = next();
        else if (a == "--plan")
            o.print_plan = true;
        else if (a == "--dot")
            o.print_dot = true;
        else if (a == "--instr")
            o.print_instr = true;
        else if (a == "--fault-spec")
            o.fault_spec = next();
        else if (a == "--fault-seed") {
            o.fault_seed = std::strtoull(next().c_str(), nullptr, 10);
            o.fault_seed_set = true;
        } else
            usage();
    }
    return o;
}

int runMain(const Options &o);

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    try {
        return runMain(o);
    } catch (const std::runtime_error &e) {
        // rsn_fatal: a user/config error the driver can classify.
        std::fprintf(stderr, "%s\n", e.what());
        return 3;
    }
}

namespace {

int
runMain(const Options &o)
{
    using namespace rsn;

    if (!o.isa.empty()) {
        // Strict, unlike the RSN_ISA env fallback: an artifact told to
        // run a specific kernel table must not silently run another.
        Status st = kernel::Registry::instance().select(o.isa, "cli:--isa");
        if (!st.ok()) {
            std::fprintf(stderr, "--isa %s: %s\n", o.isa.c_str(),
                         st.toString().c_str());
            return 2;
        }
    }

    lib::Model model;
    if (o.model == "bert")
        model = lib::bertLargeEncoder(o.batch, o.seq, o.fuse_qkv,
                                      o.layers);
    else if (o.model == "vit")
        model = lib::vitEncoder(o.batch, o.fuse_qkv, o.layers);
    else if (o.model == "ncf")
        model = lib::ncf(o.batch);
    else if (o.model == "mlp")
        model = lib::mlp(o.batch);
    else if (o.model == "tiny")
        model = lib::tinyEncoder(o.batch, 32, 64, 4, 128, o.fuse_qkv);
    else
        usage();

    lib::ScheduleOptions sched;
    if (o.schedule == "opt")
        sched = lib::ScheduleOptions::optimized();
    else if (o.schedule == "bw")
        sched = lib::ScheduleOptions::bwOptimized();
    else if (o.schedule == "noopt")
        sched = lib::ScheduleOptions::noOptimize();
    else
        usage();

    auto cfg = core::MachineConfig::vck190(o.functional);
    if (o.bw_scale != 1.0) {
        cfg.ddr.read_gbps *= o.bw_scale;
        cfg.ddr.write_gbps *= o.bw_scale;
        cfg.lpddr.read_gbps *= o.bw_scale;
        cfg.lpddr.write_gbps *= o.bw_scale;
    }
    if (!o.fault_spec.empty()) {
        Status st;
        cfg.fault = sim::FaultSpec::parse(o.fault_spec, &st);
        if (!st.ok()) {
            std::fprintf(stderr, "%s\n", st.toString().c_str());
            return 3;
        }
    }
    if (o.fault_seed_set) {
        // A bare --fault-seed arms the chaos preset; with --fault-spec it
        // just overrides the spec's seed.
        if (o.fault_spec.empty())
            cfg.fault = sim::FaultSpec::chaosPreset(o.fault_seed);
        else
            cfg.fault.seed = o.fault_seed;
    }
    if (Status st = cfg.validate(); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 3;
    }
    core::RsnMachine mach(cfg);

    if (o.print_plan) {
        lib::Segmenter seg(lib::PlatformBudget{});
        std::printf("%s\n", seg.plan(model).toString().c_str());
    }
    if (o.print_dot)
        std::printf("%s\n", mach.topology().toDot().c_str());

    auto compiled = lib::compileModel(mach, model, sched);
    if (o.print_instr) {
        std::printf("instructions: %zu packets, %llu bytes (uOPs: ",
                    compiled.program.size(),
                    (unsigned long long)compiled.program.totalBytes());
        Bytes uop_bytes = 0;
        for (int t = 0; t < kNumFuTypes; ++t)
            uop_bytes += compiled.program.expandedUopBytes(
                static_cast<FuType>(t));
        std::printf("%llu bytes, %.1fx compression)\n",
                    (unsigned long long)uop_bytes,
                    double(uop_bytes) / compiled.program.totalBytes());
    }

    std::unique_ptr<core::Tracer> tracer;
    if (!o.trace_path.empty())
        tracer = std::make_unique<core::Tracer>(mach);

    auto checked = lib::runModelChecked(mach, model, compiled, 2025);
    const auto &r = checked.report.result;
    if (!checked.report.ok()) {
        std::printf("RUN DID NOT COMPLETE\n%s\n",
                    checked.report.toString().c_str());
        return 4;
    }

    std::printf("%s: %u x %u, %s schedule\n", model.name.c_str(),
                o.batch, o.seq, o.schedule.c_str());
    std::printf("  latency   : %.3f ms (%llu ticks @ 260 MHz)\n", r.ms,
                (unsigned long long)r.ticks);
    std::printf("  kernels   : %s via %s (probe: %s)\n",
                checked.report.isa.c_str(),
                checked.report.isa_source.c_str(),
                checked.report.isa_probe.c_str());
    std::printf("  compute   : %.2f achieved TFLOPS (peak %.2f)\n",
                mach.achievedTflops(r), mach.peakTflops());
    std::printf("  DDR       : %.1f MB read, %.1f MB written (%.0f%% "
                "busy)\n",
                mach.ddrChannel().bytesRead() / 1e6,
                mach.ddrChannel().bytesWritten() / 1e6,
                100 * mach.ddrChannel().utilization(r.ticks));
    std::printf("  LPDDR     : %.1f MB read (%.0f%% busy)\n",
                mach.lpddrChannel().bytesRead() / 1e6,
                100 * mach.lpddrChannel().utilization(r.ticks));
    core::PowerModel power;
    std::printf("  power     : %.1f W operating / %.1f W dynamic\n",
                power.operatingWatts(mach, r),
                power.dynamicWatts(mach, r));

    if (mach.faultInjector()) {
        std::printf("  faults    : %llu injected and recovered (spec %s)\n",
                    (unsigned long long)checked.report.faults_injected,
                    cfg.fault.toString().c_str());
    }
    if (o.functional) {
        std::printf("  functional: %s\n",
                    checked.outputs_ok
                        ? "all tensors match the FP32 reference"
                        : "MISMATCH");
        if (!checked.outputs_ok) {
            for (const auto &name : checked.mismatched)
                std::printf("    diverged: %s\n", name.c_str());
            return 1;
        }
    }
    if (tracer) {
        if (tracer->writeChromeJson(o.trace_path))
            std::printf("  trace     : %s (%zu slices; open in "
                        "chrome://tracing)\n",
                        o.trace_path.c_str(), tracer->slices().size());
        else
            std::printf("  trace     : FAILED to write %s\n",
                        o.trace_path.c_str());
    }
    return 0;
}

} // namespace
