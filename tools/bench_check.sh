#!/usr/bin/env bash
# Benchmark regression check: run the sim-kernel microbenchmarks and
# compare items/sec against the committed BENCH_sim.json snapshot.
#
# Reports a per-benchmark delta table over the UNION of baseline and
# current benchmark names — added benchmarks are listed explicitly with
# their fresh numbers (and remind you to refresh the snapshot), removed
# benchmarks are treated as failures unless ALLOW_REMOVED=1 (silently
# losing perf coverage is itself a regression). Alloc-per-item counters
# are compared exactly: a path that was allocation-free in the snapshot
# must stay allocation-free.
#
# A benchmark regresses when it falls below TOLERANCE x the committed
# items/sec (default 0.70, i.e. >30% slower — wide enough for noisy CI
# runners, tight enough to catch real hot-path regressions). Exits
# nonzero on any regression; the CI job wiring is non-blocking
# (continue-on-error), so this shows up as a visible red mark without
# gating the merge.
#
# Usage: tools/bench_check.sh [build-dir] [baseline-json]
#   TOLERANCE=0.5 tools/bench_check.sh    # override the threshold
#   ALLOW_REMOVED=1 tools/bench_check.sh  # renamed/removed is expected
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BASELINE="${2:-BENCH_sim.json}"
TOLERANCE="${TOLERANCE:-0.70}"
ALLOW_REMOVED="${ALLOW_REMOVED:-0}"

if [[ ! -f "$BASELINE" ]]; then
    echo "error: baseline $BASELINE not found" >&2
    exit 2
fi

if [[ ! -x "$BUILD/bench_micro_sim" || ! -x "$BUILD/bench_functional" ||
      ! -x "$BUILD/bench_serving" ]]; then
    cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD" -j "$(nproc)" \
        --target bench_micro_sim bench_functional bench_serving
fi

CURRENT="$(mktemp --suffix=.json)"
trap 'rm -f "$CURRENT"' EXIT
tools/bench_json.sh "$BUILD" "$CURRENT"

python3 - "$BASELINE" "$CURRENT" "$TOLERANCE" "$ALLOW_REMOVED" <<'EOF'
import json
import sys

baseline = json.load(open(sys.argv[1]))["events_per_second"]
current = json.load(open(sys.argv[2]))["events_per_second"]
tolerance = float(sys.argv[3])
allow_removed = sys.argv[4] == "1"

ALLOC_KEYS = ("allocs_per_event", "allocs_per_chunk", "allocs_per_tile")

rows = []
problems = []
added = []
removed = []
for name in sorted(set(baseline) | set(current)):
    base = baseline.get(name)
    cur = current.get(name)
    if base is None:
        added.append(name)
        ips = (cur or {}).get("items_per_second")
        rows.append((name, None, ips, None, "NEW"))
        continue
    if cur is None:
        removed.append(name)
        rows.append((name, base.get("items_per_second"), None, None,
                     "REMOVED"))
        continue
    base_ips = base.get("items_per_second")
    cur_ips = cur.get("items_per_second") or 0.0
    if base_ips is None:
        continue
    ratio = cur_ips / base_ips if base_ips else float("inf")
    notes = []
    # A snapshot taken on different hardware runs different kernel
    # tables: note the ISA flip instead of calling it a regression
    # (the ratio still prints, but apples-to-oranges is visible). Same
    # for a dtype flip — a series that changed precision policy is not
    # comparable to its baseline either.
    if base.get("isa") and cur.get("isa") and base["isa"] != cur["isa"]:
        notes.append(f"isa {base['isa']}->{cur['isa']}")
    if base.get("dtype", "f32") != (cur.get("dtype") or "f32"):
        notes.append(f"dtype {base.get('dtype', 'f32')}"
                     f"->{cur.get('dtype', 'f32')}")
    if ratio < tolerance:
        notes.append("<< REGRESSED")
        problems.append(f"{name} at {ratio:.2f}x baseline")
    for key in ALLOC_KEYS:
        if base.get(key) == 0.0 and (cur.get(key) or 0.0) > 0.0:
            notes.append(f"<< {key}={cur[key]:.3g} (was 0)")
            problems.append(f"{name} now allocates ({key})")
    rows.append((name, base_ips, cur_ips, ratio, " ".join(notes)))

def num(v):
    return f"{v:12.3e}" if v is not None else f"{'—':>12}"

w = max(len(r[0]) for r in rows) if rows else 10
print(f"{'benchmark':<{w}}  {'baseline':>12}  {'current':>12}  "
      f"{'ratio':>6}")
for name, base_ips, cur_ips, ratio, note in rows:
    r = f"{ratio:6.2f}" if ratio is not None else f"{'—':>6}"
    print(f"{name:<{w}}  {num(base_ips)}  {num(cur_ips)}  {r}  {note}")

if added:
    print(f"\n{len(added)} new benchmark(s) without a baseline: "
          + ", ".join(added))
    print("  -> refresh the snapshot: tools/bench_json.sh && "
          "commit BENCH_sim.json")
if removed:
    print(f"\n{len(removed)} benchmark(s) missing from this build: "
          + ", ".join(removed))
    if not allow_removed:
        problems.extend(f"{n} disappeared" for n in removed)
        print("  -> renamed/removed deliberately? re-run with "
              "ALLOW_REMOVED=1 and refresh BENCH_sim.json")

compared = sum(1 for r in rows if r[3] is not None)
if problems:
    print(f"\nFAIL: {len(problems)} problem(s):")
    for p in problems:
        print(f"  - {p}")
    sys.exit(1)
print(f"\nOK: {compared} benchmark(s) within {tolerance:.2f}x of "
      f"baseline, alloc-free paths still alloc-free")
EOF
