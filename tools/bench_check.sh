#!/usr/bin/env bash
# Benchmark regression check: run the sim-kernel microbenchmarks and
# compare items/sec against the committed BENCH_sim.json snapshot.
#
# A benchmark regresses when it falls below TOLERANCE x the committed
# value (default 0.70, i.e. >30% slower — wide enough for noisy CI
# runners, tight enough to catch real hot-path regressions). Exits
# nonzero on any regression; the CI job wiring is non-blocking
# (continue-on-error), so this shows up as a visible red mark without
# gating the merge.
#
# Usage: tools/bench_check.sh [build-dir] [baseline-json]
#   TOLERANCE=0.5 tools/bench_check.sh   # override the threshold
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BASELINE="${2:-BENCH_sim.json}"
TOLERANCE="${TOLERANCE:-0.70}"

if [[ ! -f "$BASELINE" ]]; then
    echo "error: baseline $BASELINE not found" >&2
    exit 2
fi

if [[ ! -x "$BUILD/bench_micro_sim" ]]; then
    cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD" -j "$(nproc)" --target bench_micro_sim
fi

CURRENT="$(mktemp --suffix=.json)"
trap 'rm -f "$CURRENT"' EXIT
tools/bench_json.sh "$BUILD" "$CURRENT"

python3 - "$BASELINE" "$CURRENT" "$TOLERANCE" <<'EOF'
import json
import sys

baseline = json.load(open(sys.argv[1]))["events_per_second"]
current = json.load(open(sys.argv[2]))["events_per_second"]
tolerance = float(sys.argv[3])

rows = []
regressed = []
for name, base in sorted(baseline.items()):
    cur = current.get(name)
    base_ips = base.get("items_per_second")
    if cur is None or base_ips is None:
        continue  # renamed/removed benchmark: not a regression
    cur_ips = cur.get("items_per_second") or 0.0
    ratio = cur_ips / base_ips if base_ips else float("inf")
    ok = ratio >= tolerance
    rows.append((name, base_ips, cur_ips, ratio, ok))
    if not ok:
        regressed.append(name)

w = max(len(r[0]) for r in rows) if rows else 10
print(f"{'benchmark':<{w}}  {'baseline':>12}  {'current':>12}  "
      f"{'ratio':>6}")
for name, base_ips, cur_ips, ratio, ok in rows:
    mark = "" if ok else "  << REGRESSED"
    print(f"{name:<{w}}  {base_ips:12.3e}  {cur_ips:12.3e}  "
          f"{ratio:6.2f}{mark}")

new = sorted(set(current) - set(baseline))
if new:
    print("\nnew benchmarks (no baseline): " + ", ".join(new))

if regressed:
    print(f"\nFAIL: {len(regressed)} benchmark(s) below "
          f"{tolerance:.2f}x baseline: " + ", ".join(regressed))
    sys.exit(1)
print(f"\nOK: all {len(rows)} benchmarks within {tolerance:.2f}x "
      "of baseline")
EOF
