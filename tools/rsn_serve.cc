/**
 * @file
 * rsn-serve: fault-tolerant serving harness driver (serve/scheduler.hh).
 *
 * Runs one open-loop serving simulation per offered-load point — seeded
 * Poisson (or trace-replay) arrivals of mixed tiny-encoder request
 * classes onto a fixed fleet of lane-cached machines — and prints each
 * point's ServingReport. Points are spread across --jobs worker lanes;
 * the printed bytes are identical for every jobs value (the chaos
 * smoke in tools/smoke.sh diffs jobs=1 against jobs=4).
 *
 * Usage:
 *   rsn-serve [options]
 *     --load LIST            offered loads in requests per simulated
 *                            second, comma-separated (default 20000)
 *     --requests N           Poisson stream length (default 64)
 *     --seed N               arrival/jitter seed (default 1)
 *     --jobs N               worker lanes across load points (default
 *                            1; 0 = all hardware threads)
 *     --fleet N              machine slots (default 2)
 *     --max-batch N          requests co-batched per run (default 4)
 *     --linger T             batch head wait in ticks (default 4096)
 *     --deadline T           per-request deadline in ticks (0 = off)
 *     --queue-cap N          queued requests before shedding (def. 256)
 *     --watermark T          projected-wait shed bound in ticks (0=off)
 *     --retries N            max re-dispatches per request (default 2)
 *     --backoff T            retry backoff base in ticks (default 1024)
 *     --jitter T             retry jitter bound in ticks (default 512)
 *     --breaker-threshold N  consecutive hard faults to open (def. 3)
 *     --breaker-cooldown T   open-state ticks before half-open (65536)
 *     --budget T             per-run tick budget (default 10000000)
 *     --timing-only          skip FP32 payloads + output verification
 *     --fault-spec SPEC      arm fault injection ("key=value,..." per
 *                            sim/fault.hh, or the preset name "chaos")
 *     --fault-seed N         chaos seed; each dispatch salts it
 *     --trace FILE           replay arrivals from FILE ("<tick> <cls>"
 *                            per line) instead of the Poisson stream
 *
 * Exit codes:
 *   0  every load point drained (all requests resolved)
 *   2  usage error
 *   3  invalid configuration (machine config, fault spec, policy, trace)
 *
 * Examples:
 *   rsn-serve --load 10000,20000,40000 --requests 128 --jobs 4
 *   rsn-serve --fault-seed 7 --deadline 2000000 --load 30000
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "lib/sweep.hh"
#include "serve/scheduler.hh"

namespace {

struct Options {
    std::string loads = "20000";
    std::size_t requests = 64;
    std::uint64_t seed = 1;
    long jobs = 1;
    rsn::serve::ServePolicy policy;
    bool timing_only = false;
    std::string fault_spec;
    std::uint64_t fault_seed = 0;
    bool fault_seed_set = false;
    std::string trace_path;
};

void
usage()
{
    std::fprintf(stderr,
                 "see the header of tools/rsn_serve.cc for usage\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        auto nextU64 = [&]() {
            return std::strtoull(next().c_str(), nullptr, 10);
        };
        if (a == "--load")
            o.loads = next();
        else if (a == "--requests")
            o.requests = nextU64();
        else if (a == "--seed")
            o.seed = nextU64();
        else if (a == "--jobs")
            o.jobs = std::strtol(next().c_str(), nullptr, 10);
        else if (a == "--fleet")
            o.policy.fleet = nextU64();
        else if (a == "--max-batch")
            o.policy.max_batch = static_cast<std::uint32_t>(nextU64());
        else if (a == "--linger")
            o.policy.batch_linger = nextU64();
        else if (a == "--deadline")
            o.policy.deadline = nextU64();
        else if (a == "--queue-cap")
            o.policy.queue_capacity = nextU64();
        else if (a == "--watermark")
            o.policy.shed_wait_watermark = nextU64();
        else if (a == "--retries")
            o.policy.max_retries = static_cast<std::uint32_t>(nextU64());
        else if (a == "--backoff")
            o.policy.backoff_base = nextU64();
        else if (a == "--jitter")
            o.policy.retry_jitter = nextU64();
        else if (a == "--breaker-threshold")
            o.policy.breaker_threshold =
                static_cast<std::uint32_t>(nextU64());
        else if (a == "--breaker-cooldown")
            o.policy.breaker_cooldown = nextU64();
        else if (a == "--budget")
            o.policy.run_tick_budget = nextU64();
        else if (a == "--timing-only")
            o.timing_only = true;
        else if (a == "--fault-spec")
            o.fault_spec = next();
        else if (a == "--fault-seed") {
            o.fault_seed = nextU64();
            o.fault_seed_set = true;
        } else if (a == "--trace")
            o.trace_path = next();
        else
            usage();
    }
    return o;
}

int
runMain(const Options &o)
{
    using namespace rsn;

    serve::ServeSpec base;
    base.cfg = core::MachineConfig::vck190(
        /*functional=*/!o.timing_only);
    base.classes = serve::defaultClasses();
    base.policy = o.policy;
    base.seed = o.seed;
    base.num_requests = o.requests;

    if (!o.fault_spec.empty()) {
        Status st;
        base.cfg.fault = sim::FaultSpec::parse(o.fault_spec, &st);
        if (!st.ok()) {
            std::fprintf(stderr, "%s\n", st.toString().c_str());
            return 3;
        }
    }
    if (o.fault_seed_set) {
        // Like rsn-sim: a bare --fault-seed arms the chaos preset; with
        // --fault-spec it overrides that spec's seed.
        if (o.fault_spec.empty())
            base.cfg.fault = sim::FaultSpec::chaosPreset(o.fault_seed);
        else
            base.cfg.fault.seed = o.fault_seed;
    }
    if (Status st = base.cfg.validate(); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 3;
    }
    if (Status st = base.policy.validate(); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 3;
    }

    if (!o.trace_path.empty()) {
        std::ifstream in(o.trace_path);
        if (!in) {
            std::fprintf(stderr, "cannot read trace %s\n",
                         o.trace_path.c_str());
            return 3;
        }
        std::ostringstream text;
        text << in.rdbuf();
        Status st;
        base.trace = serve::parseTrace(text.str(), base.classes.size(),
                                       &st);
        if (!st.ok()) {
            std::fprintf(stderr, "%s\n", st.toString().c_str());
            return 3;
        }
    }

    std::vector<serve::ServeSpec> specs;
    std::size_t pos = 0;
    while (pos < o.loads.size()) {
        std::size_t comma = o.loads.find(',', pos);
        if (comma == std::string::npos)
            comma = o.loads.size();
        const double load =
            std::atof(o.loads.substr(pos, comma - pos).c_str());
        if (load <= 0)
            usage();
        serve::ServeSpec s = base;
        s.offered_load = load;
        specs.push_back(std::move(s));
        pos = comma + 1;
    }

    const lib::SweepExecutor executor(
        lib::SweepExecutor::resolveJobs(o.jobs));
    const auto reports = serve::runServingSweep(executor, specs);

    // The lane count goes to stderr: stdout is the determinism artifact
    // tools/smoke.sh byte-compares across --jobs values, and lanes are
    // the one input allowed to differ.
    std::fprintf(stderr, "rsn-serve: %u lane%s\n", executor.jobs(),
                 executor.jobs() == 1 ? "" : "s");
    std::printf("rsn-serve: %zu load point%s, fleet=%zu\n", specs.size(),
                specs.size() == 1 ? "" : "s", base.policy.fleet);
    for (const auto &rep : reports)
        std::printf("%s", rep.toString().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    try {
        return runMain(o);
    } catch (const std::runtime_error &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 3;
    }
}
